package exec

import (
	"math"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// StageMeasure is the engine's measurement of one pipeline stage under a
// given intra-stage parallelization, per microbatch unless noted. It is
// the unit both the full AP search (which "profiles" stage candidates, as
// Alpa does) and end-to-end plan evaluation consume.
type StageMeasure struct {
	FwdCompute float64 // forward compute kernels
	BwdCompute float64 // backward compute kernels (≈ BwdFactor × forward)
	TPComm     float64 // tensor-parallel collectives, forward direction
	Straggler  float64 // multiplicative sync penalty applied to compute
	GradSync   float64 // per-iteration data-parallel gradient all-reduce
	ParamBytes float64 // stage parameter bytes (before TP sharding)
}

// Time returns the stage's per-microbatch latency: straggler-inflated
// compute plus the tensor-parallel collectives of both directions.
func (m StageMeasure) Time() float64 {
	return (m.FwdCompute+m.BwdCompute)*m.Straggler + 2*m.TPComm
}

// MeasureStage measures one stage candidate: the operator range and
// (dp, tp) shape of st, with microSamples samples per microbatch split
// across dp replicas. This is the quantity a real system obtains by
// compiling and profiling the stage executable on hardware — the unit of
// AP search cost.
func (e *Engine) MeasureStage(g *model.Graph, st parallel.StagePlan, spec hw.GPU, microSamples float64, gpusPerNode int) StageMeasure {
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	spr := microSamples / float64(st.DP) // samples per replica per microbatch

	var m StageMeasure
	for _, op := range g.Ops[st.OpStart:st.OpEnd] {
		m.FwdCompute += e.KernelTime(op, spec, spr, st.TP)
		m.ParamBytes += op.ParamBytes
		if st.TP > 1 && op.TPCommBytes > 0 {
			topo := hw.Topology{
				GPUType: spec.Name, Workers: st.TP,
				CrossNode: st.TP > gpusPerNode, NICShare: gpusPerNode,
			}
			prim := hw.Primitive(op.TPPrimitive)
			if prim == "" {
				prim = hw.AllReduce
			}
			m.TPComm += e.CollectiveTime(prim, topo, op.TPCommBytes*spr)
		}
	}
	m.BwdCompute = m.FwdCompute * e.BwdFactor

	// Replica-synchronization straggler: the slowest of dp×tp workers
	// gates every microbatch boundary.
	m.Straggler = 1.0
	if group := st.GPUs(); group > 1 {
		m.Straggler = 1 + e.StragglerCoef*math.Log2(float64(group))
	}

	// Data-parallel gradient all-reduce (once per iteration).
	if st.DP > 1 {
		share := gpusPerNode / st.TP
		if share < 1 {
			share = 1
		}
		topo := hw.Topology{
			GPUType: spec.Name, Workers: st.DP,
			CrossNode: st.GPUs() > gpusPerNode, NICShare: share,
		}
		m.GradSync = e.CollectiveTime(hw.AllReduce, topo, m.ParamBytes/float64(st.TP))
	}
	return m
}

// StageFitsMemory reports whether the stage candidate fits device memory
// under the pessimistic assumption that it is the pipeline's first stage
// (which retains the most in-flight microbatches under 1F1B).
func StageFitsMemory(g *model.Graph, st parallel.StagePlan, spec hw.GPU, globalBatch, numMicro, numStages int) bool {
	mem := parallel.StageMemoryBytes(g, st, globalBatch, numMicro, 0, numStages)
	return mem <= spec.MemBytes*parallel.MemoryReserveFraction
}
