package fixture

import "sort"

type cand struct {
	score float64
	rank  int
}

// The PR 5 frontier bug: a bare metric comparator lets pdqsort pick an
// arbitrary survivor among equal scores.
func rankBare(cs []cand) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].score > cs[j].score }) // want `sort.Slice without a tie-break chain`
}

// An opaque less func proves nothing about the order.
func rankOpaque(cs []cand, less func(i, j int) bool) {
	sort.Slice(cs, less) // want `sort.Slice with an opaque less func`
}

// A guard chain whose final comparison is non-strict violates the sort
// contract outright, so it is not accepted as a chain.
func rankNonStrict(cs []cand) {
	sort.Slice(cs, func(i, j int) bool { // want `sort.Slice without a tie-break chain`
		if cs[i].score != cs[j].score {
			return cs[i].score > cs[j].score
		}
		return cs[i].rank <= cs[j].rank
	})
}
