package evalcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/store"
)

// populate measures a handful of stage candidates and one plan through the
// cache, returning the inputs for later comparison.
func populate(t *testing.T, c *Cache) (*model.Graph, hw.GPU, []parallel.StagePlan) {
	t.Helper()
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	spec := hw.MustLookup("A40")
	stages := []parallel.StagePlan{
		{OpStart: 0, OpEnd: 3, DP: 2, TP: 1},
		{OpStart: 3, OpEnd: len(g.Ops), DP: 1, TP: 2},
		{OpStart: 0, OpEnd: len(g.Ops), DP: 4, TP: 1},
	}
	for _, st := range stages {
		c.MeasureStage(g, st, spec, 16, 0)
	}
	if _, err := c.Evaluate(g, parallel.PureDP(g, 4), spec, 128, 0); err != nil {
		t.Fatal(err)
	}
	return g, spec, stages
}

// warmCache populates a cache bound to a fresh store and flushes it.
func warmCache(t *testing.T, st *store.Store) (*model.Graph, hw.GPU, []parallel.StagePlan) {
	t.Helper()
	c := New(exec.NewEngine(42))
	c.AttachStore(st)
	g, spec, stages := populate(t, c)
	if err := c.SaveStore(st); err != nil {
		t.Fatal(err)
	}
	return g, spec, stages
}

// TestStoreRoundTrip proves the cross-process reuse story: a second cache
// backed by the first one's store serves every measurement as a hit, and
// the served values are bit-identical to direct engine measurements.
func TestStoreRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, spec, stages := warmCache(t, st)

	// A fresh process: new engine (same seed), new cache, warm store.
	eng2 := exec.NewEngine(42)
	c2 := New(eng2)
	c2.AttachStore(st)
	for _, sp := range stages {
		got := c2.MeasureStage(g, sp, spec, 16, 0)
		want := eng2.MeasureStage(g, sp, spec, 16, spec.GPUsPerNode)
		if got != want {
			t.Fatalf("restored measurement diverges for %+v: %+v vs %+v", sp, got, want)
		}
	}
	if s := c2.Stats(); s.StageMisses != 0 {
		t.Fatalf("warm cache re-measured %d stages", s.StageMisses)
	}
	stats := c2.StoreStats()
	if len(stats.Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", stats.Skipped)
	}
	if stats.Shards == 0 || stats.Stages == 0 || stats.Ops == 0 || stats.Plans == 0 {
		t.Fatalf("nothing restored: %+v", stats)
	}

	// A hit-only session is clean: SaveStore must leave the object
	// byte-identical (no rewrite of unchanged contexts).
	objs, err := st.List("eval")
	if err != nil || len(objs) != 1 {
		t.Fatalf("want 1 eval object, got %v (%v)", objs, err)
	}
	path := filepath.Join(st.Dir(), "eval", string(objs[0])+".json")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SaveStore(st); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("clean context was rewritten on save")
	}
}

// TestStorePlanOnlyUse proves a session that only evaluates plans — never
// measuring stages directly — still hits the persisted plan memo (the
// context hydrates when Evaluate resolves its shard).
func TestStorePlanOnlyUse(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, spec, _ := warmCache(t, st)

	c2 := New(exec.NewEngine(42))
	c2.AttachStore(st)
	if _, err := c2.Evaluate(g, parallel.PureDP(g, 4), spec, 128, 0); err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.PlanMisses != 0 || s.PlanHits != 1 {
		t.Fatalf("plan memo not restored: %+v", s)
	}
}

// TestStoreRoundTripOpReuse proves the persisted op table serves stage
// candidates that were never measured as whole stages: a new (range, DP)
// sharing (tp, samples-per-replica) with stored ops assembles from them
// bit-identically.
func TestStoreRoundTripOpReuse(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, spec, _ := warmCache(t, st)

	eng2 := exec.NewEngine(42)
	c2 := New(eng2)
	c2.AttachStore(st)
	// (micro=16, DP=2, TP=1) shares spr=8 with the stored {0,3,DP2,TP1}
	// context; the range differs, so this is a stage miss served from ops.
	novel := parallel.StagePlan{OpStart: 1, OpEnd: 5, DP: 2, TP: 1}
	got := c2.MeasureStage(g, novel, spec, 16, 0)
	want := eng2.MeasureStage(g, novel, spec, 16, spec.GPUsPerNode)
	if got != want {
		t.Fatalf("op-assembled measurement diverges: %+v vs %+v", got, want)
	}
	if c2.StoreStats().Ops == 0 {
		t.Fatal("op table was not restored")
	}
}

// TestStoreForeignSeedIgnored verifies content addressing isolates seeds:
// a cache on another seed derives different keys, so it neither restores
// the foreign objects nor warns about them — they are simply not its.
func TestStoreForeignSeedIgnored(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmCache(t, st)

	eng2 := exec.NewEngine(7)
	c2 := New(eng2)
	c2.AttachStore(st)
	g, spec, _ := populate(t, c2)
	_ = g
	_ = spec
	stats := c2.StoreStats()
	if stats.Shards != 0 || stats.Stages != 0 {
		t.Fatalf("foreign-seed objects restored: %+v", stats)
	}
	if len(stats.Skipped) != 0 {
		t.Fatalf("healthy foreign objects must not warn: %v", stats.Skipped)
	}
	if s := c2.Stats(); s.StageMisses == 0 {
		t.Fatal("other seed must measure cold")
	}
}

// TestStoreRetunedEngineIgnored verifies the engine fingerprint isolates
// tunable changes the same way: retuned engines derive different keys and
// never see (or warn about) the old objects.
func TestStoreRetunedEngineIgnored(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmCache(t, st)

	eng2 := exec.NewEngine(42)
	eng2.BwdFactor = 2.5 // ablation-style retune
	c2 := New(eng2)
	c2.AttachStore(st)
	populate(t, c2)
	stats := c2.StoreStats()
	if stats.Shards != 0 || len(stats.Skipped) != 0 {
		t.Fatalf("retuned engine must neither restore nor warn: %+v", stats)
	}
}

// TestStoreTruncatedObject verifies the corruption path: a truncated
// object lands in StoreStats.Skipped as a typed *store.Error when its
// context is resolved, and the session transparently re-measures.
func TestStoreTruncatedObject(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmCache(t, st)
	entries, err := os.ReadDir(filepath.Join(dir, "eval"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(dir, "eval", e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	eng2 := exec.NewEngine(42)
	c2 := New(eng2)
	c2.AttachStore(st)
	g, spec, stages := populate(t, c2)
	stats := c2.StoreStats()
	if stats.Shards != 0 {
		t.Fatalf("truncated objects restored: %+v", stats)
	}
	if len(stats.Skipped) != 1 {
		t.Fatalf("want 1 skip for the touched context, got %v", stats.Skipped)
	}
	var se *store.Error
	if !errors.As(stats.Skipped[0], &se) || !errors.Is(stats.Skipped[0], store.ErrCorrupt) {
		t.Fatalf("want *store.Error wrapping ErrCorrupt, got %v", stats.Skipped[0])
	}
	// The rebuild path: values are freshly measured and correct.
	if s := c2.Stats(); s.StageMisses == 0 {
		t.Fatal("expected fresh measurements after corrupt store")
	}
	got := c2.MeasureStage(g, stages[0], spec, 16, 0)
	want := eng2.MeasureStage(g, stages[0], spec, 16, spec.GPUsPerNode)
	if got != want {
		t.Fatalf("rebuild diverges: %+v vs %+v", got, want)
	}
	// SaveStore repairs the object for the next process.
	if err := c2.SaveStore(st); err != nil {
		t.Fatal(err)
	}
	c3 := New(exec.NewEngine(42))
	c3.AttachStore(st)
	c3.MeasureStage(g, stages[0], spec, 16, 0)
	if s := c3.Stats(); s.StageMisses != 0 {
		t.Fatal("repaired store should serve hits")
	}
}

func TestAttachStoreHydratesInSortedShardOrder(t *testing.T) {
	// AttachStore hydrates every already-resolved context; skipped-object
	// errors land in StoreStats().Skipped in hydration order, which must
	// be the sorted shard-key order (graph, gpu, gpusPerNode), not the
	// shard map's range order. Six stale objects make an accidentally
	// sorted map order vanishingly likely (1/6! per attach), so this
	// fails against a map-range hydration loop.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := model.MustBuildClustered("GPT-1.3B")
	engineFP := EngineFingerprint(exec.NewEngine(42))
	type shardCtx struct {
		gpu string
		gpn int
	}
	ctxs := []shardCtx{ // sorted shard-key order
		{"A10", 4}, {"A10", 8}, {"A40", 4}, {"A40", 8}, {"V100", 4}, {"V100", 8},
	}
	for _, sc := range ctxs {
		spec := hw.MustLookup(sc.gpu)
		key := shardStoreKey(engineFP, GraphFingerprint(g), GPUFingerprint(spec), sc.gpn)
		stale := shardDump{Seed: 7, Graph: g.Name, GPU: sc.gpu, GPUsPerNode: sc.gpn} // foreign seed
		if err := st.Put(evalDomain, key, stale); err != nil {
			t.Fatal(err)
		}
	}

	var first []string
	for run := 0; run < 4; run++ {
		c := New(exec.NewEngine(42))
		for _, i := range []int{3, 0, 5, 2, 4, 1} { // resolve out of order
			sc := ctxs[i]
			c.StageShard(g, hw.MustLookup(sc.gpu), sc.gpn)
		}
		c.AttachStore(st)
		skipped := c.StoreStats().Skipped
		if len(skipped) != len(ctxs) {
			t.Fatalf("run %d: %d objects skipped, want %d: %v", run, len(skipped), len(ctxs), skipped)
		}
		got := make([]string, len(skipped))
		for i, e := range skipped {
			got[i] = e.Error()
		}
		for i, sc := range ctxs {
			wantFrag := fmt.Sprintf("want %s/%s/gpn=%d", g.Name, sc.gpu, sc.gpn)
			if !strings.Contains(got[i], wantFrag) {
				t.Fatalf("run %d: skip %d = %q, want context %q — hydration out of sorted shard order",
					run, i, got[i], wantFrag)
			}
		}
		if first == nil {
			first = got
		} else if !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d: skip order diverged from run 0:\n%v\nvs\n%v", run, got, first)
		}
	}
}
