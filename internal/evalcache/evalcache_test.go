package evalcache

import (
	"reflect"
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

func testGraph(t *testing.T) *model.Graph {
	t.Helper()
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMeasureStageMatchesEngine(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")

	st := parallel.StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 2, TP: 2}
	want := eng.MeasureStage(g, st, spec, 16, spec.GPUsPerNode)
	for i := 0; i < 3; i++ {
		got := c.MeasureStage(g, st, spec, 16, spec.GPUsPerNode)
		if got != want {
			t.Fatalf("cached measurement diverged: got %+v want %+v", got, want)
		}
	}
	if s := c.Stats(); s.StageMisses != 1 || s.StageHits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", s)
	}
}

func TestDistinctKeysDoNotAlias(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")

	a := c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 4, DP: 2, TP: 1}, spec, 16, spec.GPUsPerNode)
	b := c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 4, DP: 1, TP: 2}, spec, 16, spec.GPUsPerNode)
	if a == b {
		t.Fatal("DP2 and TP2 shapes must measure differently")
	}
	// Same shape, different sample count.
	d := c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 4, DP: 2, TP: 1}, spec, 8, spec.GPUsPerNode)
	if a == d {
		t.Fatal("different micro-batch samples must measure differently")
	}
	if s := c.Stats(); s.StageMisses != 3 {
		t.Errorf("want 3 distinct entries, stats %+v", s)
	}
}

func TestEvaluateMatchesEngineAndCopies(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")
	plan := parallel.PureDP(g, 4)

	want, err := eng.EvaluateWithNodes(g, plan, spec, 128, spec.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Evaluate(g, plan, spec, 128, spec.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached evaluate diverged:\n got %+v\nwant %+v", got, want)
	}
	// Mutating a returned result must not poison the cache.
	got.StageTime[0] = -1
	again, err := c.Evaluate(g, plan, spec, 128, spec.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("cache entry was mutated through a returned result")
	}
	if s := c.Stats(); s.PlanMisses != 1 || s.PlanHits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", s)
	}
}

func TestEvaluateErrorNotCached(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")
	plan := parallel.PureDP(g, 4)

	if _, err := c.Evaluate(g, plan, spec, 0, spec.GPUsPerNode); err == nil {
		t.Fatal("want error for batch 0")
	}
	if _, plans := c.Len(); plans != 0 {
		t.Fatalf("error was cached: %d plan entries", plans)
	}
}

func TestConcurrentAccess(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")

	want := eng.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 6, DP: 2, TP: 1}, spec, 16, spec.GPUsPerNode)
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Mix one shared key with per-goroutine keys.
				got := c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 6, DP: 2, TP: 1}, spec, 16, spec.GPUsPerNode)
				if got != want {
					t.Errorf("concurrent read diverged")
					return
				}
				c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 1 + k%6, DP: 1, TP: 1}, spec, float64(1+i%4), spec.GPUsPerNode)
			}
		}(k)
	}
	wg.Wait()
}

func TestReset(t *testing.T) {
	eng := exec.NewEngine(42)
	c := New(eng)
	g := testGraph(t)
	spec := hw.MustLookup("A40")
	c.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 2, DP: 1, TP: 1}, spec, 4, spec.GPUsPerNode)
	c.Reset()
	if stages, plans := c.Len(); stages != 0 || plans != 0 {
		t.Fatalf("Reset left %d/%d entries", stages, plans)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("Reset left counters %+v", s)
	}
}
