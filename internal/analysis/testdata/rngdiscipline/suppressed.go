package fixture

import (
	//arena:allow rngdiscipline fixture exercises the reasoned-suppression path
	mrand "math/rand"
)

// The import above is suppressed with a reason; using the package in a
// local (non-package-level) position adds no further findings.
func shuffleInPlace(seed int64, xs []int) {
	r := mrand.New(mrand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
