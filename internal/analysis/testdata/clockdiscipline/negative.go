package fixture

import "time"

// Durations and duration arithmetic are legal: the ban is on acquiring
// instants or waiting on the real clock, not on describing time.
const roundLength = 300 * time.Millisecond

func slack(d time.Duration) time.Duration {
	return d + roundLength
}

func format(t time.Time) string {
	return t.Format(time.RFC3339)
}
