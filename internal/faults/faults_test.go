package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/sjtu-epcc/arena/internal/hw"
)

func testModel() *Model {
	return &Model{
		Default: TypeFaults{MTBF: 6 * 3600, MTTR: 1800, SlowEvery: 12 * 3600},
	}
}

func TestModelScheduleDeterministic(t *testing.T) {
	spec := hw.ClusterA()
	a := testModel().Schedule(spec, 42, 7*24*3600)
	b := testModel().Schedule(spec, 42, 7*24*3600)
	if len(a) == 0 {
		t.Fatal("week-long horizon with 6h MTBF produced no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce an identical fault realization")
	}
	c := testModel().Schedule(spec, 43, 7*24*3600)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should produce different realizations")
	}
}

func TestModelScheduleWellFormed(t *testing.T) {
	spec := hw.ClusterA()
	horizon := 7 * 24 * 3600.0
	s := testModel().Schedule(spec, 7, horizon)
	if err := s.Validate(spec); err != nil {
		t.Fatalf("generated schedule must validate against its own spec: %v", err)
	}
	// Sorted by time; per-node crash/recover strictly alternate.
	type nodeKey struct {
		typ  string
		node int
	}
	downState := map[nodeKey]bool{}
	prev := -1.0
	for i, ev := range s {
		if ev.Time < prev {
			t.Fatalf("event %d out of order: %v after %v", i, ev.Time, prev)
		}
		prev = ev.Time
		if ev.Time < 0 || ev.Time >= horizon {
			t.Fatalf("event %d outside horizon: %v", i, ev.Time)
		}
		k := nodeKey{ev.GPUType, ev.Node}
		switch ev.Kind {
		case Crash:
			if downState[k] {
				t.Fatalf("event %d: node %v crashed while down", i, k)
			}
			downState[k] = true
		case Recover:
			if !downState[k] {
				t.Fatalf("event %d: node %v recovered while up", i, k)
			}
			downState[k] = false
		}
	}
}

func TestModelPerTypeOverride(t *testing.T) {
	m := &Model{
		Default: TypeFaults{MTBF: 3600},
		PerType: map[string]TypeFaults{"A10": {}}, // A10 nodes never fail
	}
	s := m.Schedule(hw.ClusterA(), 1, 48*3600)
	for _, ev := range s {
		if ev.GPUType == "A10" {
			t.Fatalf("per-type override ignored: %+v", ev)
		}
	}
	if len(s) == 0 {
		t.Fatal("A40 region should still fail under the default")
	}
}

func TestParseTrace(t *testing.T) {
	in := `
# failure storm
100 crash A40 3
1900 recover A40 3
500 slow A10 0 0.4 1000
`
	s, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{
		{Time: 100, Kind: Crash, GPUType: "A40", Node: 3},
		{Time: 500, Kind: SlowStart, GPUType: "A10", Node: 0, Factor: 0.4},
		{Time: 1500, Kind: SlowEnd, GPUType: "A10", Node: 0},
		{Time: 1900, Kind: Recover, GPUType: "A40", Node: 3},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %+v,\nwant %+v", s, want)
	}
	if err := s.Validate(hw.ClusterA()); err != nil {
		t.Fatal(err)
	}
}

func TestParseTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"too few fields":   "100 crash A40",
		"bad time":         "abc crash A40 0",
		"negative time":    "-5 crash A40 0",
		"bad node":         "100 crash A40 x",
		"unknown kind":     "100 explode A40 0",
		"crash extra":      "100 crash A40 0 0.5",
		"slow missing dur": "100 slow A40 0 0.5",
		"slow factor 0":    "100 slow A40 0 0 600",
		"slow factor 1.2":  "100 slow A40 0 1.2 600",
		"slow bad dur":     "100 slow A40 0 0.5 -600",
	}
	for name, in := range cases {
		_, err := ParseTrace(strings.NewReader("# header\n" + in))
		if err == nil {
			t.Errorf("%s: accepted %q", name, in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) || !errors.Is(err, ErrTraceSyntax) {
			t.Errorf("%s: want *ParseError wrapping ErrTraceSyntax, got %v", name, err)
			continue
		}
		if pe.Line != 2 {
			t.Errorf("%s: reported line %d, want 2", name, pe.Line)
		}
	}
}

func TestValidateRejectsOffSpec(t *testing.T) {
	spec := hw.ClusterA()
	cases := map[string]Event{
		"unknown type": {Time: 1, Kind: Crash, GPUType: "H100", Node: 0},
		"node beyond":  {Time: 1, Kind: Crash, GPUType: "A40", Node: 16},
		"node neg":     {Time: 1, Kind: Crash, GPUType: "A40", Node: -1},
		"bad kind":     {Time: 1, Kind: Kind("melt"), GPUType: "A40", Node: 0},
		"bad factor":   {Time: 1, Kind: SlowStart, GPUType: "A40", Node: 0, Factor: 1.5},
	}
	for name, ev := range cases {
		if err := (Schedule{ev}).Validate(spec); err == nil {
			t.Errorf("%s: accepted %+v", name, ev)
		}
	}
}

func TestConfigDefaultsAndEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Fatal("nil config must be disabled")
	}
	if (&Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(&Config{Model: &Model{}}).Enabled() {
		t.Fatal("a model enables injection")
	}
	if !(&Config{Trace: Schedule{{Time: 1, Kind: Crash, GPUType: "A40"}}}).Enabled() {
		t.Fatal("a trace enables injection")
	}
	d := Config{}.WithDefaults()
	if d.CheckpointInterval != 1800 || d.RetryBudget != 5 || d.BackoffBase != 60 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	keep := Config{CheckpointInterval: 60, RetryBudget: 1, BackoffBase: 5}.WithDefaults()
	if keep.CheckpointInterval != 60 || keep.RetryBudget != 1 || keep.BackoffBase != 5 {
		t.Fatalf("explicit knobs overwritten: %+v", keep)
	}
}
