// Package sim is the discrete-event cluster simulator: the reproduction
// of the paper's simulator.py (§4: "Arena provides a simulator to conduct
// large-scale scheduling experiments, ensuring high fidelity by sharing
// scheduling codes and logics with the real-testbed scheduler"). The same
// Policy implementations drive both this simulator and any finer-grained
// configuration — exactly the code-sharing fidelity argument of §5.2.
//
// Time advances in fixed scheduling rounds (5 minutes in the paper).
// Between rounds, running jobs progress continuously; completions free
// resources at their exact times. Reconfiguration overheads (AP search,
// checkpoint-resume) suppress a job's throughput until they elapse.
package sim

import (
	"context"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/clock"
	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/rng"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Config drives one simulation.
type Config struct {
	Spec   hw.ClusterSpec
	Policy sched.Policy
	Jobs   []trace.Job
	DB     *perfdb.DB

	// RoundSeconds is the scheduling interval (paper: 5 minutes).
	RoundSeconds float64
	// MaxRounds bounds the simulation; 0 derives a horizon from the trace.
	MaxRounds int
	// MaxPerJob caps per-job allocations; 0 uses the database's MaxN.
	MaxPerJob int

	// ThroughputNoise adds deterministic per-(job, segment) variance to
	// achieved throughput, emulating real-testbed measurement conditions
	// for the §5.2 fidelity study. 0 = noiseless simulation.
	ThroughputNoise float64
	Seed            uint64

	// IncludeUnfinished censors unfinished jobs' JCT at the horizon and
	// includes them (Fig. 12's "unfinished jobs included").
	IncludeUnfinished bool

	// Faults enables deterministic fault injection: crashes preempt the
	// jobs on the dead node and roll them back to their last modeled
	// checkpoint, stragglers degrade achieved throughput, and the Summary
	// gains goodput/wasted accounting. Nil (or a disabled config) keeps
	// the failure-free simulation bit-identical to the pre-fault model.
	Faults *faults.Config

	// Clock drives the round loop. Nil uses a virtual clock (discrete-
	// event time, no wall time burned — the classic simulator). A wall
	// clock turns the very same loop into real-time execution: rounds
	// still run at their nominal instants k*RoundSeconds, so results are
	// bit-identical across clocks. internal/server plugs its clock into
	// the same Engine this loop drives.
	Clock clock.Clock

	// Progress, when non-nil, receives one "sim.round" event per
	// scheduling round (called from the simulation loop, single-threaded).
	// It never affects outcomes.
	Progress core.ProgressFunc
}

// Result carries the aggregated metrics plus final job states.
type Result struct {
	metrics.Summary
	Jobs []*sched.Job
	// Horizon is the simulated end time.
	Horizon float64
}

// Run executes the simulation to completion or the round bound.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the round loop stops at
// the first cancelled check — always between rounds, so an in-flight
// round completes — and returns ctx.Err() with a nil result.
// Uncancelled, the simulation is bit-identical to Run.
//
// RunCtx is a thin driver over Engine: it hands Engine.Round to
// clock.Tick on the configured clock (virtual by default). The live
// server (internal/server) drives the identical Engine and loop with a
// wall clock and a journal — there is no forked round logic.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg() // normalized defaults (RoundSeconds, MaxPerJob)
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewVirtual()
	}
	maxRounds := e.MaxRounds()
	lastNow := 0.0
	err = clock.Tick(ctx, clk, cfg.RoundSeconds, func(round int, now float64) bool {
		if round >= maxRounds {
			return false
		}
		lastNow = now
		e.Round(now)
		cfg.Progress.Emit("sim.round", cfg.Policy.Name(), round+1, maxRounds)
		return !(e.Done() && round > 1)
	})
	if err != nil {
		return nil, err
	}
	return e.Finish(lastNow + cfg.RoundSeconds), nil
}

// state is the simulator's mutable world.
type state struct {
	cfg     Config
	cluster *cluster.Cluster
	noise   *rng.SplitMix64

	pending []*sched.Job // submitted in the future
	queued  []*sched.Job
	running []*sched.Job
	done_   []*sched.Job

	thrSeries []float64
	lastTime  float64

	// Fault injection (nil faults = disabled; see internal/faults).
	faults *faults.Config
	events faults.Schedule // materialized realization, time-ordered
	evIdx  int             // next unapplied event

	// Goodput accounting. acct is keyed by job pointer and only ever
	// read through a specific job — never iterated — so map order cannot
	// leak into results.
	acct          map[*sched.Job]*jobAcct
	goodputGPUSec float64
	wastedGPUSec  float64
	recomputeSec  float64
}

// jobAcct tracks one job's progress relative to its last durable
// checkpoint: the window a crash destroys, and the job's total retained
// (checkpointed or completed) GPU-time.
type jobAcct struct {
	sinceCkptSec    float64 // productive seconds since the last checkpoint
	sinceCkptGPUSec float64 // GPU-seconds accumulated in that window
	retainedGPUSec  float64 // all GPU-seconds currently counted as goodput
}

// acctFor returns (creating on first use) a job's accounting record.
func (s *state) acctFor(j *sched.Job) *jobAcct {
	ac, ok := s.acct[j]
	if !ok {
		ac = &jobAcct{}
		s.acct[j] = ac
	}
	return ac
}

// advanceTo progresses running jobs from lastTime to t, finishing jobs at
// their exact completion times and applying fault events at theirs. Fault
// events bound each continuous segment, so a crash preempts exactly the
// progress made up to the crash instant — completions at the same instant
// win (kindRank orders crashes last for the same reason).
func (s *state) advanceTo(t float64) {
	s.fireFaultsThrough(s.lastTime)
	for s.lastTime < t {
		bound := t
		if next := s.nextFaultTime(); next < bound {
			bound = next
		}
		// Earliest completion in (lastTime, bound]?
		var next *sched.Job
		nextAt := bound
		for _, j := range s.running {
			thr := s.effectiveThr(j)
			if thr <= 0 {
				continue
			}
			start := math.Max(s.lastTime, j.BusyUntil)
			if start >= bound {
				continue
			}
			finish := start + j.RemainingSamples/thr
			if finish <= nextAt {
				next, nextAt = j, finish
			}
		}
		s.progressAll(s.lastTime, nextAt)
		s.lastTime = nextAt
		if next != nil {
			s.complete(next, nextAt)
			continue
		}
		s.fireFaultsThrough(s.lastTime)
	}
	s.fireFaultsThrough(t)
}

// nextFaultTime peeks the next unapplied fault event's time.
func (s *state) nextFaultTime() float64 {
	if s.evIdx < len(s.events) {
		return s.events[s.evIdx].Time
	}
	return math.Inf(1)
}

// fireFaultsThrough applies every fault event with Time <= t.
func (s *state) fireFaultsThrough(t float64) {
	for s.evIdx < len(s.events) && s.events[s.evIdx].Time <= t {
		s.applyFault(s.events[s.evIdx])
		s.evIdx++
	}
}

// progressAll advances every running job's remaining work over [a, b).
func (s *state) progressAll(a, b float64) {
	for _, j := range s.running {
		thr := s.effectiveThr(j)
		if thr <= 0 {
			continue
		}
		start := math.Max(a, j.BusyUntil)
		if start >= b {
			continue
		}
		s.progressJob(j, start, b, thr)
	}
}

// progressJob advances one job over [start, b) at throughput thr,
// crossing checkpoint boundaries. The checkpoint clock ticks on
// *productive* time: every CheckpointInterval seconds of actual training
// the job durably saves, and a later crash rolls back only to that point.
// Without fault injection the interval splitting is skipped, keeping the
// single-subtraction arithmetic (and so the trajectory) bit-identical to
// the failure-free model.
func (s *state) progressJob(j *sched.Job, start, b, thr float64) {
	n := float64(j.Alloc.N)
	ac := s.acctFor(j)
	dt := b - start
	if s.faults != nil && s.faults.CheckpointInterval > 0 {
		ci := s.faults.CheckpointInterval
		for ac.sinceCkptSec+dt >= ci {
			step := ci - ac.sinceCkptSec
			j.RemainingSamples -= step * thr
			if j.RemainingSamples < 0 {
				j.RemainingSamples = 0
			}
			s.goodputGPUSec += step * n
			ac.retainedGPUSec += step * n
			j.CheckpointRemaining = j.RemainingSamples
			ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
			dt -= step
		}
	}
	j.RemainingSamples -= dt * thr
	if j.RemainingSamples < 0 {
		j.RemainingSamples = 0
	}
	s.goodputGPUSec += dt * n
	ac.retainedGPUSec += dt * n
	ac.sinceCkptSec += dt
	ac.sinceCkptGPUSec += dt * n
}

// effectiveThr is the job's achieved throughput including straggler
// degradation and the fidelity noise knob.
func (s *state) effectiveThr(j *sched.Job) float64 {
	thr := j.ActualThr
	if thr <= 0 {
		return 0
	}
	if f := j.SlowFactor; f > 0 && f < 1 {
		thr *= f
	}
	if s.cfg.ThroughputNoise > 0 {
		r := rng.Derive(s.cfg.Seed, rng.HashString(j.Trace.ID), uint64(j.Resched))
		thr *= 1 + s.cfg.ThroughputNoise*(2*r.Float64()-1)
	}
	return thr
}

// complete finishes a job and frees its resources.
func (s *state) complete(j *sched.Job, at float64) {
	j.State = sched.StateFinished
	j.FinishedAt = at
	s.cluster.Free(j.Trace.ID)
	s.running = removeJob(s.running, j)
	s.done_ = append(s.done_, j)
}

// admit moves submitted jobs into the queue.
func (s *state) admit(now float64) {
	i := 0
	for ; i < len(s.pending); i++ {
		if s.pending[i].SubmittedAt > now {
			break
		}
		s.queued = append(s.queued, s.pending[i])
	}
	s.pending = s.pending[i:]
}

// apply executes the policy's assignment: drops, shrinks, launches, and
// growths, charging deployment overheads.
func (s *state) apply(now float64, asg sched.Assignment) {
	for _, id := range asg.Drop {
		if j := s.findQueued(id); j != nil {
			j.State = sched.StateDropped
			j.FinishedAt = now
			s.queued = removeJob(s.queued, j)
			s.done_ = append(s.done_, j)
		}
	}
	if len(asg.Migrate) > 0 {
		migrate := append([]string(nil), asg.Migrate...)
		sort.Strings(migrate)
		for _, id := range migrate {
			if _, placed := asg.Place[id]; placed {
				continue // a rescale supersedes the migration
			}
			if j := s.findAny(id); j != nil && j.Running() {
				s.migrate(now, j)
			}
		}
	}
	if len(asg.Place) == 0 {
		return
	}
	// Deterministic application order: shrinks and moves of running jobs
	// first (they free capacity), then queued launches, then growths.
	ids := make([]string, 0, len(asg.Place))
	for id := range asg.Place {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rank := func(id string) int {
		j := s.findAny(id)
		if j == nil {
			return 9
		}
		target := asg.Place[id]
		switch {
		case j.State == sched.StateQueued:
			return 2
		case target.N < j.Alloc.N:
			return 0
		case target.GPUType != j.Alloc.GPUType:
			return 1
		default:
			return 3
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return rank(ids[a]) < rank(ids[b]) })

	for _, id := range ids {
		target := asg.Place[id]
		j := s.findAny(id)
		if j == nil || target.IsZero() {
			continue
		}
		switch j.State {
		case sched.StateQueued:
			s.launch(now, j, target)
		case sched.StateRunning:
			if j.Alloc == target {
				continue
			}
			s.rescale(now, j, target)
		}
	}
}

// launch places a queued job.
func (s *state) launch(now float64, j *sched.Job, target sched.Alloc) {
	w := j.Workload()
	actual := s.cfg.Policy.ActualThr(s.cfg.DB, w, target.GPUType, target.N)
	if actual <= 0 {
		return // perceived-feasible but truly infeasible: stays queued
	}
	if err := s.cluster.Alloc(j.Trace.ID, target.GPUType, target.N); err != nil {
		return // fragmentation: retry next round
	}
	j.State = sched.StateRunning
	j.Alloc = target
	j.ActualThr = actual
	j.BusyUntil = now + s.cfg.Policy.DeployOverhead(s.cfg.DB, w, target.GPUType, target.N)
	if j.Restarting {
		// Crash-restart: restoring the checkpoint stalls the job on top
		// of the deployment search.
		j.BusyUntil += sched.CheckpointResume
		j.Restarting = false
	}
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	// A (re)launch starts a fresh checkpoint epoch from the restored state.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.acctFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
	if j.LaunchedAt < 0 {
		j.LaunchedAt = now
	}
	s.queued = removeJob(s.queued, j)
	s.running = append(s.running, j)
}

// migrate moves a running job to a fresh allocation of the same shape
// (straggler routing): the parallelism plan survives, so only checkpoint-
// resume is charged, no new search. Free-then-realloc with the cluster's
// healthy-first placement is what routes it off the degraded node.
func (s *state) migrate(now float64, j *sched.Job) {
	old := j.Alloc
	s.cluster.Free(j.Trace.ID)
	if err := s.cluster.Alloc(j.Trace.ID, old.GPUType, old.N); err != nil {
		// The freed block must refit (nothing else allocates in between);
		// requeue defensively if it somehow cannot.
		j.State = sched.StateQueued
		j.Alloc = sched.Alloc{}
		j.ActualThr = 0
		j.SlowFactor = 0
		s.running = removeJob(s.running, j)
		s.queued = append(s.queued, j)
		return
	}
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	j.Migrations++
	j.Resched++
	j.BusyUntil = math.Max(now, j.BusyUntil) + sched.CheckpointResume
	// Migration checkpoints the job: progress so far is durable.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.acctFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
}

// rescale moves a running job to a new allocation, paying checkpoint-
// resume plus the parallelism search.
func (s *state) rescale(now float64, j *sched.Job, target sched.Alloc) {
	w := j.Workload()
	actual := s.cfg.Policy.ActualThr(s.cfg.DB, w, target.GPUType, target.N)
	if actual <= 0 {
		return
	}
	old := j.Alloc
	s.cluster.Free(j.Trace.ID)
	if err := s.cluster.Alloc(j.Trace.ID, target.GPUType, target.N); err != nil {
		// Fragmentation defeated the move; restore the old allocation.
		if err := s.cluster.Alloc(j.Trace.ID, old.GPUType, old.N); err != nil {
			// Old slots vanished too (should not happen: we just freed
			// them); requeue defensively.
			j.State = sched.StateQueued
			j.Alloc = sched.Alloc{}
			j.ActualThr = 0
			s.running = removeJob(s.running, j)
			s.queued = append(s.queued, j)
		}
		return
	}
	j.Alloc = target
	j.ActualThr = actual
	j.Resched++
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	// §5.8: the rescheduling AP search is non-blocking (the runtime
	// searches while the job drains); only checkpoint-resume stops
	// training, plus a small blocking tail of the search. A job still
	// reconfiguring stacks the new stall after the old one — charging
	// from `now` let overlapping reconfigurations swallow each other.
	j.BusyUntil = math.Max(now, j.BusyUntil) + sched.CheckpointResume +
		0.2*s.cfg.Policy.DeployOverhead(s.cfg.DB, w, target.GPUType, target.N)
	// Checkpoint-resume implies a durable save of progress so far.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.acctFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
}

// sampleThroughput records the instantaneous cluster throughput.
func (s *state) sampleThroughput(now float64) {
	var total float64
	for _, j := range s.running {
		if j.BusyUntil <= now {
			thr := j.ActualThr
			if f := j.SlowFactor; f > 0 && f < 1 {
				thr *= f
			}
			total += thr
		}
	}
	s.thrSeries = append(s.thrSeries, total)
}

func (s *state) done() bool {
	return len(s.pending) == 0 && len(s.queued) == 0 && len(s.running) == 0
}

// finish assembles the metrics summary.
func (s *state) finish(end float64) *Result {
	// Total counts the jobs that belong to the simulated horizon: done,
	// running, queued, and the pending jobs whose trace submission falls
	// inside it. A pending job submitted after the horizon (a MaxRounds
	// cap can end the simulation mid-trace) was never part of this run —
	// counting it inflated Total and skewed every per-job ratio derived
	// from it.
	total := len(s.done_) + len(s.running) + len(s.queued)
	for _, j := range s.pending {
		if j.Trace.SubmitTime <= end {
			total++
		}
	}
	sum := metrics.Summary{
		Policy:           s.cfg.Policy.Name(),
		ThroughputSeries: s.thrSeries,
		Total:            total,
	}
	consider := append([]*sched.Job(nil), s.done_...)
	if s.cfg.IncludeUnfinished {
		consider = append(consider, s.running...)
		consider = append(consider, s.queued...)
		// Jobs still pending (e.g. stuck in their profiling prepend) are
		// censored too, as long as their trace submission precedes the
		// horizon.
		for _, j := range s.pending {
			if j.Trace.SubmitTime <= end {
				consider = append(consider, j)
			}
		}
	}
	var resched, launched float64
	for _, j := range consider {
		switch j.State {
		case sched.StateFinished:
			sum.Finished++
			sum.JCTs = append(sum.JCTs, j.FinishedAt-j.Trace.SubmitTime)
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
				if j.FinishedAt <= j.Trace.SubmitTime+j.Trace.Deadline {
					sum.DeadlineSatisfied++
				}
			}
		case sched.StateDropped:
			sum.Dropped++
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
			}
		case sched.StateFailed:
			sum.Failed++
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
			}
		default: // censored
			sum.JCTs = append(sum.JCTs, end-j.Trace.SubmitTime)
		}
		if j.LaunchedAt >= 0 {
			sum.QueueTimes = append(sum.QueueTimes, j.LaunchedAt-j.Trace.SubmitTime)
			launched++
			resched += float64(j.Resched)
		}
	}
	if launched > 0 {
		sum.AvgReschedules = resched / launched
	}
	jobs := append([]*sched.Job(nil), s.done_...)
	jobs = append(jobs, s.running...)
	jobs = append(jobs, s.queued...)
	jobs = append(jobs, s.pending...)
	sum.GoodputGPUHours = s.goodputGPUSec / 3600
	sum.WastedGPUHours = s.wastedGPUSec / 3600
	sum.RecomputeSeconds = s.recomputeSec
	for _, j := range jobs {
		sum.Preemptions += j.Preemptions
		sum.Restarts += j.Restarts
	}
	sum.Finalize()
	return &Result{Summary: sum, Jobs: jobs, Horizon: end}
}

func (s *state) findQueued(id string) *sched.Job {
	for _, j := range s.queued {
		if j.Trace.ID == id {
			return j
		}
	}
	return nil
}

func (s *state) findAny(id string) *sched.Job {
	if j := s.findQueued(id); j != nil {
		return j
	}
	for _, j := range s.running {
		if j.Trace.ID == id {
			return j
		}
	}
	return nil
}

func removeJob(list []*sched.Job, j *sched.Job) []*sched.Job {
	for i, x := range list {
		if x == j {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
