package perfdb

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/search"
)

// Key addresses one database entry.
type Key struct {
	Workload model.Workload
	GPUType  string
	N        int
}

// Entry holds the three performance views for one resource point.
type Entry struct {
	// DPThr is pure data-parallel throughput; 0 when DP does not fit.
	DPThr float64
	// APThr is the full-search (Alpa) optimal throughput; 0 = infeasible.
	APThr float64
	// APPlan annotates the searched optimal plan (e.g. "PP2,DP2").
	APPlan string
	// ArenaEstThr is the profiler's estimate for the best grid's proxy
	// plan — the number Arena's scheduler uses for decisions.
	ArenaEstThr float64
	// ArenaActualThr is the engine-measured throughput of the plan
	// Arena's pruned search deploys — what an Arena-scheduled job really
	// achieves.
	ArenaActualThr float64
	// ArenaPlan annotates the deployed plan.
	ArenaPlan string

	// SearchTimeFull / SearchTimePruned model the wall-clock AP search
	// cost paid at (re)deployment: baselines pay the full search, Arena
	// the pruned one (§3.6, §5.8).
	SearchTimeFull   float64
	SearchTimePruned float64
}

// DB is the complete database plus per-policy profiling-cost models.
type DB struct {
	GPUTypes []string
	MaxN     int

	// seed records the build engine's determinism seed; snapshots refuse
	// to serve a request built for a different seed.
	seed uint64

	entries map[Key]*Entry

	// arenaProfileWall is Arena's per-workload grid-profiling wall time
	// (single-GPU disaggregated profiling, §5.8: ≈8.5 min at N=16, M=4).
	arenaProfileWall map[model.Workload]float64
	// dpProfileWall is the full-space DP profiling wall time per workload
	// (ElasticFlow/Gavel-style ahead-of-time measurement, §2.3).
	dpProfileWall map[model.Workload]float64
	// siaProfileWall is Sia's bootstrap profiling wall time (1-GPU).
	siaProfileWall map[model.Workload]float64

	// observed holds online-profiled actual throughputs (Sia's refinement
	// loop, Fig. 4(b)).
	observed map[Key]float64
}

// Options configure a database build.
type Options struct {
	// Seed, when non-zero, must match the engine's seed — the engine is
	// the sole source of determinism; the field exists so call sites
	// state their expectation and Build can catch a mismatched pairing.
	Seed      uint64
	GPUTypes  []string
	MaxN      int
	Workloads []model.Workload

	// NoCache disables the shared stage-measurement cache and the
	// types × counts fan-out, reproducing the pre-memoization build
	// exactly (every search re-measures from scratch, serially within a
	// workload). It exists as the reference baseline for determinism
	// tests and benchmarks; the cached path is bit-identical, just
	// faster.
	NoCache bool
	// Serial additionally disables the per-workload fan-out, forcing a
	// fully single-threaded build.
	Serial bool

	// Workers caps the build's total worker budget across both fan-out
	// levels (workloads × points). <= 0 means all cores (GOMAXPROCS).
	// Like NoCache/Serial it changes wall-clock only, never results.
	Workers int

	// EvalCache, when non-nil, is the measurement cache the build's
	// searches and plan evaluations run through instead of a fresh
	// per-workload cache. It must be bound to the same engine the build
	// receives (the session passes its own). The point is cross-process
	// warm starts: with a store-attached cache (arena.WithStore), even a
	// first-ever database build begins from the op and stage
	// measurements earlier searches persisted, instead of measuring
	// every workload column cold. The engine is a pure function of its
	// seed, so sharing a cache — across workloads and across processes —
	// changes wall-clock only, never results. Ignored with NoCache.
	EvalCache *evalcache.Cache

	// Progress, when non-nil, receives one "perfdb.build" event per
	// completed (workload, type, count) point. Points fan out over worker
	// pools, so the function may be called concurrently.
	Progress core.ProgressFunc
}

// maxWorkers resolves the build's worker budget.
func (o Options) maxWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Build constructs the database by exercising the planner, profiler, full
// and pruned searches on the execution engine for every (workload, type,
// count) combination.
func Build(eng *exec.Engine, opts Options) (*DB, error) {
	return BuildCtx(context.Background(), eng, opts)
}

// BuildCtx is Build with cooperative cancellation: when ctx is cancelled
// the build's worker pools drain their in-flight points and BuildCtx
// returns ctx.Err() with a nil database — no goroutine outlives the call.
// Uncancelled, the result is bit-identical to Build.
func BuildCtx(ctx context.Context, eng *exec.Engine, opts Options) (*DB, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.GPUTypes) == 0 {
		return nil, fmt.Errorf("perfdb: no GPU types")
	}
	if opts.Seed != 0 && opts.Seed != eng.Seed() {
		return nil, fmt.Errorf("perfdb: options seed %d does not match engine seed %d", opts.Seed, eng.Seed())
	}
	if opts.EvalCache != nil && opts.EvalCache.Engine() != eng {
		return nil, fmt.Errorf("perfdb: eval cache is bound to a different engine (seed %d) than the build's (seed %d)",
			opts.EvalCache.Engine().Seed(), eng.Seed())
	}
	if opts.MaxN < 1 {
		opts.MaxN = 16
	}
	if len(opts.Workloads) == 0 {
		opts.Workloads = model.Workloads()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db := &DB{
		GPUTypes:         opts.GPUTypes,
		MaxN:             opts.MaxN,
		seed:             eng.Seed(),
		entries:          map[Key]*Entry{},
		arenaProfileWall: map[model.Workload]float64{},
		dpProfileWall:    map[model.Workload]float64{},
		siaProfileWall:   map[model.Workload]float64{},
		observed:         map[Key]float64{},
	}

	ct, err := profiler.OfflineSampleComm(eng, opts.GPUTypes, opts.MaxN)
	if err != nil {
		return nil, err
	}

	// Workloads are independent; build them concurrently. The engine is a
	// pure function of its seed, so concurrency cannot perturb results.
	results := make([]workloadResult, len(opts.Workloads))
	workloadWorkers := opts.maxWorkers()
	if opts.Serial {
		workloadWorkers = 1
	}
	counts := 0
	for n := 1; n <= opts.MaxN; n *= 2 {
		counts++
	}
	sink := &progressSink{fn: opts.Progress, total: len(opts.Workloads) * len(opts.GPUTypes) * counts}
	if err := core.ParallelForCtx(ctx, len(opts.Workloads), workloadWorkers, func(i int) {
		results[i] = buildWorkload(ctx, eng, ct, opts.Workloads[i], opts, sink)
	}); err != nil {
		return nil, err
	}

	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for k, e := range r.entries {
			db.entries[k] = e
		}
		db.arenaProfileWall[r.w] = r.arenaWall
		db.dpProfileWall[r.w] = r.dpWall
		db.siaProfileWall[r.w] = r.siaWall
	}
	return db, nil
}

// workloadResult is one workload's contribution to the database.
type workloadResult struct {
	w         model.Workload
	entries   map[Key]*Entry
	arenaWall float64
	dpWall    float64
	siaWall   float64
	err       error
}

// pointResult is one (type, count) point's contribution to a workload.
type pointResult struct {
	entry   *Entry
	dpWall  float64
	siaWall float64
	err     error
}

// progressSink fans per-point completion events into the caller's
// ProgressFunc with one build-wide done counter.
type progressSink struct {
	fn    core.ProgressFunc
	total int
	done  atomic.Int64
}

func (ps *progressSink) point(w model.Workload, typ string, n int) {
	if ps.fn == nil {
		return
	}
	ps.fn(core.Event{
		Step: "perfdb.build",
		Item: fmt.Sprintf("%s/%s/n=%d", w, typ, n),
		Done: int(ps.done.Add(1)), Total: ps.total,
	})
}

// buildWorkload computes every entry of one workload (all types × counts).
//
// All points of the workload share one evalcache: a stage candidate
// measured for the n=4 full search is byte-identical for n=8 (and for the
// pruned search of either), so the column's search cost collapses to the
// distinct-candidate set. The points fan out over a worker pool; the wall
// time accumulators are folded serially in (type, count) order afterwards
// so float summation order — and therefore every derived number — matches
// the serial build bit for bit.
func buildWorkload(ctx context.Context, eng *exec.Engine, ct *profiler.CommTable, w model.Workload, opts Options, sink *progressSink) (res workloadResult) {
	res.w = w
	res.entries = map[Key]*Entry{}
	g, err := model.BuildClustered(w.Model)
	if err != nil {
		res.err = err
		return res
	}
	// One profiler per workload: its cache models the per-job profiling
	// session (cross-grid redundancy elimination).
	pl := planner.New()
	pr := profiler.New(eng, ct)
	jp, err := profiler.ProfileJobCtx(ctx, pl, pr, g, w, opts.GPUTypes, opts.MaxN, nil)
	if err != nil {
		res.err = err
		return res
	}
	res.arenaWall = jp.TotalProfileGPUTime // single profiling GPU

	// Concurrency budget: the build already fans out across workloads
	// (GOMAXPROCS-gated) and, below, across this workload's (type, count)
	// points — so searches run with Workers: 1. Splitting the core budget
	// a third time inside profileStageCandidates would only multiply
	// CPU-bound goroutines (GOMAXPROCS³) contending on the shard locks.
	//
	// A caller-provided cache (Options.EvalCache) replaces the fresh
	// per-workload one: measurement keys are namespaced by (graph,
	// device, node packing), so workloads sharing one cache cannot
	// collide, and a store-attached session cache lets this build start
	// from measurements persisted by earlier searches.
	var searchOpts search.Options
	if !opts.NoCache {
		cache := opts.EvalCache
		if cache == nil {
			cache = evalcache.New(eng)
		}
		searchOpts = search.Options{Cache: cache, Workers: 1}
	}

	type point struct {
		typ string
		n   int
	}
	var points []point
	for _, typ := range opts.GPUTypes {
		for n := 1; n <= opts.MaxN; n *= 2 {
			points = append(points, point{typ, n})
		}
	}
	outs := make([]pointResult, len(points))
	workers := 1
	if !opts.NoCache && !opts.Serial {
		// Split the worker budget across the workloads building
		// concurrently so the two fan-out levels multiply to ~budget,
		// not budget².
		budget := opts.maxWorkers()
		workers = max(1, budget/max(1, min(len(opts.Workloads), budget)))
	}
	if err := core.ParallelForCtx(ctx, len(points), workers, func(i int) {
		outs[i] = buildPoint(ctx, eng, g, w, jp, points[i].typ, points[i].n, searchOpts)
		if outs[i].err == nil {
			sink.point(w, points[i].typ, points[i].n)
		}
	}); err != nil {
		res.err = err
		return res
	}

	for i, p := range points {
		out := outs[i]
		if out.err != nil {
			res.err = out.err
			return res
		}
		res.entries[Key{Workload: w, GPUType: p.typ, N: p.n}] = out.entry
		res.dpWall += out.dpWall
		res.siaWall += out.siaWall
	}
	// Sia cannot bootstrap from a 1-GPU DP profile when the model does
	// not fit one GPU; it falls back to probing a manually partitioned
	// pipeline (§2.2 footnote), which still costs setup time.
	if res.siaWall == 0 {
		res.siaWall = 120
	}
	return res
}

// buildPoint computes the entry for one (workload, type, count) point.
func buildPoint(ctx context.Context, eng *exec.Engine, g *model.Graph, w model.Workload, jp *profiler.JobProfile, typ string, n int, searchOpts search.Options) (out pointResult) {
	spec := hw.MustLookup(typ)
	e := &Entry{}
	out.entry = e

	// Static DP view.
	var dpRes exec.Result
	var err error
	if c := searchOpts.Cache; c != nil {
		dpRes, err = c.Evaluate(g, parallel.PureDP(g, n), spec, w.GlobalBatch, spec.GPUsPerNode)
	} else {
		dpRes, err = eng.Evaluate(g, parallel.PureDP(g, n), spec, w.GlobalBatch)
	}
	if err != nil {
		out.err = err
		return out
	}
	if dpRes.Fits {
		e.DPThr = dpRes.Throughput
		// Full DP profiling occupies the n GPUs for warm-up plus
		// measured iterations (the ElasticFlow ahead-of-time pass,
		// ≈10 minutes per job across resources, §1).
		out.dpWall += 30 + dpRes.IterTime*15
		if n == 1 {
			out.siaWall += 30 + dpRes.IterTime*20 // bootstrap
		}
	} else {
		out.dpWall += 15 // OOM probe
	}

	// Adaptive-parallelism optimum (what execution achieves).
	full, err := search.FullSearchCtx(ctx, eng, g, spec, w.GlobalBatch, n, searchOpts)
	if err != nil {
		out.err = err
		return out
	}
	e.SearchTimeFull = full.SearchTime
	if full.Feasible() {
		e.APThr = full.Result.Throughput
		e.APPlan = full.Plan.Degrees()
	}

	// Arena's view: best grid estimate + pruned-search plan.
	r := core.Resource{GPUType: typ, N: n}
	if grid, ok := jp.BestGrid(r); ok {
		e.ArenaEstThr = jp.Estimates[grid].Throughput
		pruned, err := search.PrunedSearchCtx(ctx, eng, g, spec, w.GlobalBatch, n, jp.GridPlans[grid], searchOpts)
		if err == nil && pruned.Feasible() {
			e.ArenaActualThr = pruned.Result.Throughput
			e.ArenaPlan = pruned.Plan.Degrees()
			e.SearchTimePruned = pruned.SearchTime
		}
	}
	return out
}

// Entry returns the database entry for a key, if present.
func (db *DB) Entry(w model.Workload, gpuType string, n int) (*Entry, bool) {
	e, ok := db.entries[Key{Workload: w, GPUType: gpuType, N: n}]
	return e, ok
}

// DPThr returns the static data-parallel throughput view (0 = OOM).
func (db *DB) DPThr(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok {
		return e.DPThr
	}
	return 0
}

// APThr returns the adaptive-parallelism optimum (what jobs achieve).
func (db *DB) APThr(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok {
		return e.APThr
	}
	return 0
}

// ArenaEstThr returns Arena's scheduling estimate.
func (db *DB) ArenaEstThr(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok {
		return e.ArenaEstThr
	}
	return 0
}

// ArenaActualThr returns the throughput of Arena's deployed plan.
func (db *DB) ArenaActualThr(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok {
		if e.ArenaActualThr > 0 {
			return e.ArenaActualThr
		}
	}
	return 0
}

// MinFeasibleAP returns the smallest power-of-two count at which the
// workload runs with adaptive parallelism on the type (0 = never).
func (db *DB) MinFeasibleAP(w model.Workload, gpuType string) int {
	for n := 1; n <= db.MaxN; n *= 2 {
		if db.APThr(w, gpuType, n) > 0 {
			return n
		}
	}
	return 0
}

// MinFeasibleDP returns the smallest power-of-two count at which pure DP
// fits on the type (0 = never) — the demand an SP-aware scheduler
// perceives (§2.2 Case#2).
func (db *DB) MinFeasibleDP(w model.Workload, gpuType string) int {
	for n := 1; n <= db.MaxN; n *= 2 {
		if db.DPThr(w, gpuType, n) > 0 {
			return n
		}
	}
	return 0
}

// SiaEst returns Sia's bootstrapped linear estimate with precision knob η
// (§2.3): allocations up to 2^(η−1) GPUs use precisely profiled data;
// larger ones extrapolate linearly from the smallest profiled point.
//
// Sia schedules with static (data) parallelism, so its feasibility floor
// and bootstrap basis come from the DP view — the §2.2 Case#2 demand
// overestimation: a model trainable on 2 GPUs with AP but needing 8 for
// DP is only ever considered at ≥ 8. When DP fits nowhere on the type,
// Sia falls back to a manually partitioned fixed pipeline (its footnoted
// escape hatch), whose floor and throughput match the AP data.
func (db *DB) SiaEst(w model.Workload, gpuType string, n, eta int) float64 {
	if eta < 1 {
		eta = 1
	}
	minN := db.MinFeasibleDP(w, gpuType)
	manual := false
	base := 0.0
	if minN > 0 {
		base = db.DPThr(w, gpuType, minN)
	} else {
		minN = db.MinFeasibleAP(w, gpuType)
		if minN == 0 {
			return 0
		}
		// A hand-partitioned fixed pipeline runs, but well below the
		// searched AP optimum.
		manual = true
		base = manualPipelineFactor * db.APThr(w, gpuType, minN)
	}
	if n < minN {
		return 0
	}
	if n <= 1<<(eta-1) {
		if manual {
			return manualPipelineFactor * db.APThr(w, gpuType, n)
		}
		return db.APThr(w, gpuType, n)
	}
	return base / float64(minN) * float64(n)
}

// manualPipelineFactor discounts a manually partitioned fixed pipeline
// (Sia's fallback for models that do not fit data parallelism, §2.2
// footnote) against the searched adaptive-parallelism optimum.
const manualPipelineFactor = 0.8

// ResetObservations clears all online-profiled throughputs. The simulator
// calls this at the start of every run so one policy's online refinement
// cannot leak into another experiment sharing the database.
func (db *DB) ResetObservations() {
	db.observed = map[Key]float64{}
}

// Observe records an online-profiled actual throughput (Sia's refinement
// of Fig. 4(b)); ObservedThr serves it back.
func (db *DB) Observe(w model.Workload, gpuType string, n int, thr float64) {
	db.observed[Key{Workload: w, GPUType: gpuType, N: n}] = thr
}

// ObservedThr returns a previously observed throughput (0 = none).
func (db *DB) ObservedThr(w model.Workload, gpuType string, n int) float64 {
	return db.observed[Key{Workload: w, GPUType: gpuType, N: n}]
}

// ArenaProfileWall returns Arena's per-job profiling wall time: the grid
// proxies are measured on a single fragmented GPU (§3.4), so wall time
// equals the accumulated GPU time.
func (db *DB) ArenaProfileWall(w model.Workload) float64 { return db.arenaProfileWall[w] }

// DPProfileWall returns the baseline full-space DP profiling wall time.
func (db *DB) DPProfileWall(w model.Workload) float64 { return db.dpProfileWall[w] }

// SiaProfileWall returns Sia's bootstrap profiling wall time.
func (db *DB) SiaProfileWall(w model.Workload) float64 { return db.siaProfileWall[w] }

// SearchTimeFull returns the modeled full AP search wall time for a
// deployment point (baselines pay this on every (re)deployment).
func (db *DB) SearchTimeFull(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok {
		return e.SearchTimeFull
	}
	return 0
}

// SearchTimePruned returns Arena's pruned search wall time.
func (db *DB) SearchTimePruned(w model.Workload, gpuType string, n int) float64 {
	if e, ok := db.Entry(w, gpuType, n); ok && e.SearchTimePruned > 0 {
		return e.SearchTimePruned
	}
	return 0
}

// Keys returns all database keys in deterministic order (tests, dumps).
func (db *DB) Keys() []Key {
	keys := make([]Key, 0, len(db.entries))
	for k := range db.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload.String() != b.Workload.String() {
			return a.Workload.String() < b.Workload.String()
		}
		if a.GPUType != b.GPUType {
			return a.GPUType < b.GPUType
		}
		return a.N < b.N
	})
	return keys
}

// MeanEstimationError reports the mean relative error of an estimator
// column vs the AP ground truth over feasible entries — used by the §2.3
// strawman analysis bench.
func (db *DB) MeanEstimationError(est func(model.Workload, string, int) float64) float64 {
	var sum float64
	var count int
	for _, k := range db.Keys() {
		truth := db.APThr(k.Workload, k.GPUType, k.N)
		if truth <= 0 {
			continue
		}
		e := est(k.Workload, k.GPUType, k.N)
		if e <= 0 {
			continue
		}
		sum += math.Abs(e-truth) / truth
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
