package core

// Event is one progress report from a long-running pipeline step
// (performance-database builds, AP searches, job profiling, simulation
// rounds). Steps emit an event per completed unit of work so callers can
// observe — and decide to cancel — builds and searches mid-flight.
type Event struct {
	// Step names the pipeline stage, e.g. "perfdb.build", "search.full",
	// "profile.job", "sim.round".
	Step string
	// Item identifies the unit just completed, e.g. "GPT-1.3B@128/A40/n=8".
	Item string
	// Done and Total count completed units out of the step's known total
	// (Total is 0 when the step cannot predict it).
	Done, Total int
}

// ProgressFunc receives progress events. Steps that fan out over worker
// pools may call it concurrently from multiple goroutines; implementations
// must be safe for that (or be wrapped, as arena.Session does). A nil
// ProgressFunc is always allowed and disables reporting.
type ProgressFunc func(Event)

// Emit calls the function when non-nil — the universal nil-safe call site.
func (p ProgressFunc) Emit(step, item string, done, total int) {
	if p != nil {
		p(Event{Step: step, Item: item, Done: done, Total: total})
	}
}
