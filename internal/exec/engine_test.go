package exec

import (
	"math"
	"testing"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

func testGraph(t *testing.T, name string) *model.Graph {
	t.Helper()
	g, err := model.BuildClustered(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evaluate(t *testing.T, e *Engine, g *model.Graph, p *parallel.Plan, typ string, gb int) Result {
	t.Helper()
	r, err := e.Evaluate(g, p, hw.MustLookup(typ), gb)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEngineDeterminism(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	p := parallel.PureDP(g, 4)
	a := evaluate(t, NewEngine(42), g, p, "A40", 128)
	b := evaluate(t, NewEngine(42), g, p, "A40", 128)
	if a.IterTime != b.IterTime || a.Throughput != b.Throughput {
		t.Fatal("engine is not deterministic under a fixed seed")
	}
	c := evaluate(t, NewEngine(43), g, p, "A40", 128)
	if c.IterTime == a.IterTime {
		t.Fatal("different seeds should perturb measurements")
	}
}

func TestThroughputIterTimeConsistent(t *testing.T) {
	g := testGraph(t, "WRes-1B")
	p := parallel.PureDP(g, 2)
	r := evaluate(t, NewEngine(1), g, p, "A40", 256)
	if math.Abs(r.Throughput*r.IterTime-256) > 1e-6 {
		t.Errorf("throughput × iterTime = %v, want 256", r.Throughput*r.IterTime)
	}
}

func TestOOMReported(t *testing.T) {
	g := testGraph(t, "GPT-2.6B")
	r := evaluate(t, NewEngine(1), g, parallel.PureDP(g, 4), "V100", 128)
	if r.Fits {
		t.Fatal("GPT-2.6B DP4 should OOM on V100")
	}
	if r.IterTime != 0 || r.Throughput != 0 {
		t.Error("OOM results should carry no timings")
	}
	if r.MaxMem <= hw.MustLookup("V100").MemBytes {
		t.Error("reported footprint should exceed device memory")
	}
}

func TestDPScalingSublinear(t *testing.T) {
	// §2.2: throughput scales sub-linearly with GPU count.
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	t1 := evaluate(t, e, g, parallel.PureDP(g, 1), "A40", 128).Throughput
	t8 := evaluate(t, e, g, parallel.PureDP(g, 8), "A40", 128).Throughput
	if t8 <= t1 {
		t.Fatal("8 GPUs should beat 1")
	}
	if t8 >= 8*t1 {
		t.Errorf("scaling should be sub-linear: %v vs 8×%v", t8, t1)
	}
	if t8 < 3*t1 {
		t.Errorf("scaling collapse: %v vs %v", t8, t1)
	}
}

func TestFasterGPUFaster(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	p := parallel.PureTP(g, 4)
	v100 := evaluate(t, e, g, p, "V100", 128).Throughput
	h100 := evaluate(t, e, g, p, "H100", 128).Throughput
	if h100 <= v100 {
		t.Errorf("H100 (%v) should beat V100 (%v)", h100, v100)
	}
}

func TestInterconnectMatters(t *testing.T) {
	// Fig. 2(c): the same 2 GPUs linked by PCIe (one node) vs InfiniBand
	// (two nodes) perform differently for communication-heavy plans.
	g := testGraph(t, "MoE-1.3B")
	e := NewEngine(42)
	p := parallel.PureDP(g, 2)
	spec := hw.MustLookup("A40")
	intra, err := e.EvaluateWithNodes(g, p, spec, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := e.EvaluateWithNodes(g, p, spec, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Throughput >= intra.Throughput {
		t.Errorf("cross-node DP (%v) should lose to intra-node (%v)", inter.Throughput, intra.Throughput)
	}
}

func TestGPUTimeBreakdownAccounting(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	p, err := parallel.EvenPipeline(g, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := evaluate(t, e, g, p, "A40", 128)
	total := r.ComputeGPUTime + r.CommGPUTime + r.IdleGPUTime
	want := r.IterTime * float64(p.TotalGPUs())
	if math.Abs(total-want)/want > 1e-6 {
		t.Errorf("breakdown sums to %v, iterTime×GPUs = %v", total, want)
	}
	if r.ComputeGPUTime <= 0 || r.CommGPUTime <= 0 {
		t.Error("compute and comm GPU time should both be positive")
	}
}

func TestWideDPInflatesCommGPUTime(t *testing.T) {
	// Fig. 18: increasing DP has little effect on compute GPU time but
	// greatly increases communication GPU time.
	g := testGraph(t, "GPT-2.6B")
	e := NewEngine(42)
	r4 := evaluate(t, e, g, parallel.PureDP(g, 4), "A40", 128)
	r8 := evaluate(t, e, g, parallel.PureDP(g, 8), "A40", 128)
	if !r4.Fits || !r8.Fits {
		t.Fatal("plans should fit A40")
	}
	computeGrowth := r8.ComputeGPUTime / r4.ComputeGPUTime
	commGrowth := r8.CommGPUTime / r4.CommGPUTime
	if commGrowth < 2*computeGrowth {
		t.Errorf("comm growth %v should far exceed compute growth %v", commGrowth, computeGrowth)
	}
}

func TestStageTimesReported(t *testing.T) {
	g := testGraph(t, "WRes-1B")
	e := NewEngine(42)
	p, err := parallel.EvenPipeline(g, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := evaluate(t, e, g, p, "A40", 256)
	if len(r.StageTime) != 4 {
		t.Fatalf("StageTime has %d entries", len(r.StageTime))
	}
	for i, st := range r.StageTime {
		if st <= 0 {
			t.Errorf("stage %d time = %v", i, st)
		}
	}
}

func TestKernelTimeProperties(t *testing.T) {
	e := NewEngine(42)
	spec := hw.MustLookup("A100")
	op := model.Op{Kind: model.KindMLP, FLOPs: 1e11, Bytes: 1e8}
	base := e.KernelTime(op, spec, 16, 1)
	if base <= 0 {
		t.Fatal("kernel time must be positive")
	}
	// More samples, more time.
	if e.KernelTime(op, spec, 32, 1) <= base {
		t.Error("doubling samples should increase kernel time")
	}
	// TP slicing reduces per-GPU time (thin-slice efficiency loss keeps
	// it above the ideal halving).
	tp2 := e.KernelTime(op, spec, 16, 2)
	if tp2 >= base {
		t.Error("TP slicing should reduce per-GPU kernel time")
	}
	if tp2 < base/2*0.9 {
		t.Errorf("TP halving too perfect: %v vs %v (efficiency loss missing)", tp2, base)
	}
	if e.KernelTime(op, spec, 0, 1) != 0 {
		t.Error("zero samples should cost zero")
	}
}

func TestMeasureStageGradSyncOnlyWithDP(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	spec := hw.MustLookup("A40")
	st := parallel.StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 1, TP: 2}
	if m := e.MeasureStage(g, st, spec, 16, 2); m.GradSync != 0 {
		t.Error("TP-only stage should have no gradient sync")
	}
	st = parallel.StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 2, TP: 1}
	if m := e.MeasureStage(g, st, spec, 16, 2); m.GradSync <= 0 {
		t.Error("DP stage must pay gradient sync")
	}
}

func TestStragglerGrowsWithGroup(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	spec := hw.MustLookup("A40")
	m1 := e.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 4, DP: 1, TP: 1}, spec, 16, 2)
	m8 := e.MeasureStage(g, parallel.StagePlan{OpStart: 0, OpEnd: 4, DP: 8, TP: 1}, spec, 16, 2)
	if m1.Straggler != 1 {
		t.Errorf("single GPU straggler = %v", m1.Straggler)
	}
	if m8.Straggler <= m1.Straggler {
		t.Error("larger groups should straggle more")
	}
}

func TestPipelineWavefrontBalancedApproximation(t *testing.T) {
	// For balanced stages, the wavefront should approximate
	// fill + (B−1) × bottleneck.
	e := NewEngine(42)
	e.MicrobatchNoise = 0 // isolate the recurrence
	g := testGraph(t, "GPT-1.3B")
	stage := []float64{1.0, 1.0, 1.0, 1.0}
	p2p := []float64{0, 0, 0, 0}
	got := e.pipelineWavefront(g, stage, p2p, 16)
	want := 4.0 + 15.0*1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("wavefront = %v, want %v", got, want)
	}
}

func TestPipelineWavefrontBottleneckDominates(t *testing.T) {
	e := NewEngine(42)
	e.MicrobatchNoise = 0
	g := testGraph(t, "GPT-1.3B")
	balanced := e.pipelineWavefront(g, []float64{1, 1}, []float64{0, 0}, 8)
	skewed := e.pipelineWavefront(g, []float64{0.5, 1.5}, []float64{0, 0}, 8)
	// Equal total work, but imbalance costs: 1.5-bottleneck pipeline is
	// strictly slower (§3.2's load-balancing observation).
	if skewed <= balanced {
		t.Errorf("imbalanced pipeline (%v) should be slower than balanced (%v)", skewed, balanced)
	}
}

func TestValidationErrors(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	if _, err := e.Evaluate(g, &parallel.Plan{}, hw.MustLookup("A40"), 128); err == nil {
		t.Error("empty plan should error")
	}
	if _, err := e.Evaluate(g, parallel.PureDP(g, 2), hw.MustLookup("A40"), 0); err == nil {
		t.Error("zero batch should error")
	}
}

func TestDirectMeasureCost(t *testing.T) {
	g := testGraph(t, "GPT-1.3B")
	e := NewEngine(42)
	p := parallel.PureDP(g, 4)
	r := evaluate(t, e, g, p, "A40", 128)
	cost := DirectMeasureCost(r, p, 3)
	if math.Abs(cost-r.IterTime*4*4) > 1e-9 {
		t.Errorf("cost = %v, want iterTime×(3+1)×4", cost)
	}
	if DirectMeasureCost(r, p, 0) != r.IterTime*2*4 {
		t.Error("trials floor of 1 not applied")
	}
}

func TestStageFitsMemoryConsistentWithPlanMemory(t *testing.T) {
	g := testGraph(t, "GPT-2.6B")
	spec := hw.MustLookup("V100")
	st := parallel.StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 4, TP: 1}
	if StageFitsMemory(g, st, spec, 128, 4, 1) {
		t.Error("DP4 full-model stage should not fit V100")
	}
	st = parallel.StagePlan{OpStart: 0, OpEnd: len(g.Ops) / 2, DP: 1, TP: 2}
	if !StageFitsMemory(g, st, spec, 128, 8, 2) {
		t.Error("half-model TP2 stage should fit V100")
	}
}
