package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/sjtu-epcc/arena
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFullSearch/serial-4         	       5	  55792622 ns/op
BenchmarkFullSearch/serial-4         	       5	  60000000 ns/op
BenchmarkFullSearch/serial-4         	       5	  50000000 ns/op
BenchmarkFullSearch/cached-parallel-4	       5	  17781101 ns/op
BenchmarkFullSearch/cached-parallel-4	       5	  18000000 ns/op
BenchmarkFullSearch/cached-parallel-4	       5	  17000000 ns/op
BenchmarkBuildPerfDB/snapshot-4      	       5	     70602 ns/op	   12345 B/op	      67 allocs/op
PASS
ok  	github.com/sjtu-epcc/arena	12.345s
`

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkFullSearch": {
      "inputs": "ignored",
      "serial_ns_per_op": 55792622,
      "cached_parallel_ns_per_op": 17781101,
      "speedup": 3.14
    },
    "BenchmarkBuildPerfDB": {
      "snapshot_ns_per_op": 70602
    }
  }
}`

func TestParseBenchOutput(t *testing.T) {
	runs, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(runs["BenchmarkFullSearch/serial"]); got != 3 {
		t.Fatalf("serial samples: want 3, got %d", got)
	}
	// The -4 GOMAXPROCS suffix must be stripped, extra metrics tolerated.
	if got := len(runs["BenchmarkBuildPerfDB/snapshot"]); got != 1 {
		t.Fatalf("snapshot samples: want 1, got %d (keys %v)", got, runs)
	}
	if _, err := parseBenchOutput(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("benchmark-free input must error")
	}
}

func TestLoadBaselines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(path)
	if err != nil {
		t.Fatal(err)
	}
	// Underscore variants map to dash-named sub-benchmarks; non-ns fields
	// (inputs, speedup) are ignored.
	if base["BenchmarkFullSearch/cached-parallel"] != 17781101 {
		t.Fatalf("cached-parallel baseline missing: %v", base)
	}
	if len(base) != 3 {
		t.Fatalf("want 3 baselines, got %v", base)
	}
}

func TestCompareTolerance(t *testing.T) {
	runs := map[string][]float64{
		"BenchmarkFullSearch/serial": {100, 300, 200}, // median 200
		"BenchmarkFullSearch/new":    {50},            // no baseline: skipped
	}
	baselines := map[string]float64{
		"BenchmarkFullSearch/serial": 100,
		"BenchmarkFullSearch/idle":   1, // not run: skipped
	}
	res := compare(runs, baselines, 2.5)
	if len(res) != 1 || res[0].Failed {
		t.Fatalf("2.0x median must pass at 2.5x tolerance: %+v", res)
	}
	res = compare(runs, baselines, 1.5)
	if len(res) != 1 || !res[0].Failed {
		t.Fatalf("2.0x median must fail at 1.5x tolerance: %+v", res)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median: %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median: %v", m)
	}
}

func TestUnmatchedBaselines(t *testing.T) {
	runs := map[string][]float64{"BenchmarkFullSearch/serial": {100}}
	baselines := map[string]float64{
		"BenchmarkFullSearch/serial":    100,
		"BenchmarkBuildPerfDB/snapshot": 70602,
		"BenchmarkBuildPerfDB/cached":   1,
	}
	missing := unmatchedBaselines(runs, baselines)
	if len(missing) != 2 || missing[0] != "BenchmarkBuildPerfDB/cached" {
		t.Fatalf("want the two unexercised baselines sorted, got %v", missing)
	}
}
