package profiler

import (
	"context"
	"fmt"
	"math"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/planner"
)

// Profiler performs single-device disaggregated profiling of proxy plans.
type Profiler struct {
	eng   *exec.Engine
	comm  *CommTable
	cache map[opConfigKey]float64 // measured fwd kernel latencies (dedup)

	// Trials is the number of measured repetitions per unique operator
	// configuration (kernels are cheap to repeat on one GPU).
	Trials int
	// OverlapAssumption is the backward-overlap fraction the profiler's
	// end-to-end model assumes for gradient synchronization on NVLink-
	// local rings; CrossNodeOverlapAssumption applies when the ring spans
	// nodes. Both stay optimistic relative to the engine's truth — a
	// deliberate model/reality gap that grows with the data-parallel
	// width (Fig. 16a's rising error).
	OverlapAssumption          float64
	CrossNodeOverlapAssumption float64
}

// New constructs a profiler over the engine and an offline-sampled
// communication table.
func New(eng *exec.Engine, comm *CommTable) *Profiler {
	return &Profiler{
		eng:                        eng,
		comm:                       comm,
		cache:                      map[opConfigKey]float64{},
		Trials:                     3,
		OverlapAssumption:          0.5,
		CrossNodeOverlapAssumption: 0.25,
	}
}

// opConfigKey identifies a unique operator configuration after intra-stage
// reconfiguration: operators with identical kind, shape quantities, and
// parallel slicing launch identical kernels and are profiled once
// (compute-redundancy elimination, §3.4).
type opConfigKey struct {
	kind    model.OpKind
	gpu     string
	flops   float64
	bytes   float64
	samples float64
	tp      int
}

// Estimate is the profiler's output for one grid's proxy plan.
type Estimate struct {
	Grid core.Grid
	Plan *parallel.Plan

	IterTime   float64 // estimated end-to-end iteration time
	Throughput float64 // estimated samples/s

	// ProfileGPUTime is the measurement cost in GPU-seconds: unique
	// operator configurations × (fwd+bwd) × trials, on a single GPU.
	ProfileGPUTime float64
	UniqueOps      int // configurations actually measured for this plan
	TotalOps       int // operator instances the plan executes
}

// ProfileGridPlan profiles one grid's proxy plan: measures unique operator
// kernels on a single device, interpolates communication from the offline
// table, and models the 1F1B pipeline end to end (Fig. 9).
//
// The profiler's op-latency cache persists across calls, so profiling many
// grids of one job (or many jobs sharing operator shapes) skips repeated
// configurations — the cross-grid redundancy elimination of §5.8.
func (p *Profiler) ProfileGridPlan(g *model.Graph, gp *planner.GridPlan) (Estimate, error) {
	if gp == nil || !gp.Feasible || gp.Proxy == nil {
		return Estimate{}, fmt.Errorf("profiler: grid plan is infeasible")
	}
	spec, err := hw.Lookup(gp.Grid.GPUType)
	if err != nil {
		return Estimate{}, err
	}
	plan := gp.Proxy.Plan
	est := Estimate{Grid: gp.Grid, Plan: plan}

	numMicro := plan.NumMicrobatches
	microSamples := float64(gp.Grid.Workload.GlobalBatch) / float64(numMicro)
	gpusPerNode := spec.GPUsPerNode

	stageTimes := make([]float64, len(plan.Stages))
	p2pTimes := make([]float64, len(plan.Stages))
	var gradSyncLatent float64

	for i, st := range plan.Stages {
		spr := microSamples / float64(st.DP)
		var fwd, tpComm, stageParams float64
		for _, op := range g.Ops[st.OpStart:st.OpEnd] {
			est.TotalOps++
			fwd += p.measureOp(op, spec, spr, st.TP, &est)
			stageParams += op.ParamBytes
			if st.TP > 1 && op.TPCommBytes > 0 {
				topo := hw.Topology{
					GPUType: spec.Name, Workers: st.TP,
					CrossNode: st.TP > gpusPerNode, NICShare: gpusPerNode,
				}
				prim := hw.Primitive(op.TPPrimitive)
				if prim == "" {
					prim = hw.AllReduce
				}
				t, err := p.comm.Interpolate(prim, topo, op.TPCommBytes*spr)
				if err != nil {
					return Estimate{}, err
				}
				tpComm += t
			}
		}
		// Backward kernels are measured alongside forward in the stage
		// executable; the profiler sees the generic bwd/fwd ratio.
		bwd := fwd * p.eng.BwdFactor
		stageTimes[i] = fwd + bwd + 2*tpComm

		if st.DP > 1 {
			share := gpusPerNode / st.TP
			if share < 1 {
				share = 1
			}
			topo := hw.Topology{
				GPUType: spec.Name, Workers: st.DP,
				CrossNode: st.GPUs() > gpusPerNode, NICShare: share,
			}
			sync, err := p.comm.Interpolate(hw.AllReduce, topo, stageParams/float64(st.TP))
			if err != nil {
				return Estimate{}, err
			}
			overlap := p.OverlapAssumption
			if topo.CrossNode {
				overlap = p.CrossNodeOverlapAssumption
			}
			latent := sync * (1 - overlap)
			if latent > gradSyncLatent {
				gradSyncLatent = latent
			}
		}

		if i < len(plan.Stages)-1 {
			lastOp := g.Ops[st.OpEnd-1]
			crossNode := plan.TotalGPUs() > gpusPerNode
			topo := hw.Topology{GPUType: spec.Name, Workers: 2, CrossNode: crossNode, NICShare: 1}
			t, err := p.comm.Interpolate(hw.P2P, topo, lastOp.ActBytes*microSamples)
			if err != nil {
				return Estimate{}, err
			}
			p2pTimes[i] = t
		}
	}

	// End-to-end pipeline model (Fig. 9): the first microbatch traverses
	// every stage (with boundary transfers); the remaining B−1 microbatches
	// pay only the bottleneck stage, whose boundary communication overlaps
	// with the next microbatch's computation.
	var fill, bottleneck float64
	for i, t := range stageTimes {
		fill += t + p2pTimes[i]
		if t > bottleneck {
			bottleneck = t
		}
	}
	est.IterTime = fill + float64(numMicro-1)*bottleneck + gradSyncLatent
	est.Throughput = float64(gp.Grid.Workload.GlobalBatch) / est.IterTime
	// Building each stage's single-device executable is part of the
	// profiling bill (pre-compilation, §3.4).
	est.ProfileGPUTime += stageCompileSeconds * float64(len(plan.Stages))
	return est, nil
}

// Single-device profiling cost constants: reconfiguring and pre-compiling
// an operator's kernels, and building one stage executable, are paid in
// wall-clock seconds on the (single) profiling GPU.
const (
	opSetupSeconds      = 0.5
	stageCompileSeconds = 1.0
)

// measureOp returns the operator's forward kernel latency, measuring it on
// a single device unless an identical configuration was already profiled.
// Measurement cost (setup + fwd/bwd kernels × trials) is charged to the
// estimate only for cache misses.
func (p *Profiler) measureOp(op model.Op, spec hw.GPU, samples float64, tp int, est *Estimate) float64 {
	key := opConfigKey{kind: op.Kind, gpu: spec.Name, flops: op.FLOPs, bytes: op.Bytes, samples: samples, tp: tp}
	if t, ok := p.cache[key]; ok {
		return t
	}
	t := p.eng.KernelTime(op, spec, samples, tp)
	p.cache[key] = t
	est.UniqueOps++
	est.ProfileGPUTime += opSetupSeconds + t*(1+p.eng.BwdFactor)*float64(p.Trials)
	return t
}

// CacheSize reports the number of distinct operator configurations
// profiled so far (across all grids and jobs).
func (p *Profiler) CacheSize() int { return len(p.cache) }

// JobProfile aggregates the profiled grids of one (workload, types) job:
// the scheduler's view of its AP performance.
type JobProfile struct {
	Workload model.Workload
	// Estimates maps each feasible grid to its profiled estimate.
	Estimates map[core.Grid]*Estimate
	// GridPlans retains the planner output per grid (the pruned search
	// needs the Pareto frontier at deployment time).
	GridPlans map[core.Grid]*planner.GridPlan
	// TotalProfileGPUTime is the job's cumulative profiling cost in
	// GPU-seconds, with cross-grid redundancy eliminated.
	TotalProfileGPUTime float64
}

// BestGrid returns the best-estimated grid for a resource, or false when
// no grid of that resource is feasible. This is the grid traversal of
// §3.5: "Arena traverses relevant grids for the best-performing one".
func (jp *JobProfile) BestGrid(r core.Resource) (core.Grid, bool) {
	var best core.Grid
	var bestThr float64
	found := false
	for grid, est := range jp.Estimates {
		if grid.GPUType != r.GPUType || grid.N != r.N {
			continue
		}
		if !found || est.Throughput > bestThr ||
			(est.Throughput == bestThr && grid.String() < best.String()) {
			best, bestThr, found = grid, est.Throughput, true
		}
	}
	return best, found
}

// Throughput returns the job's best estimated AP throughput on a resource
// (0 when infeasible).
func (jp *JobProfile) Throughput(r core.Resource) float64 {
	g, ok := jp.BestGrid(r)
	if !ok {
		return 0
	}
	return jp.Estimates[g].Throughput
}

// ProfileJob plans and profiles every grid of a workload across the given
// GPU types up to maxN GPUs per type, returning the job's complete profile.
func ProfileJob(pl *planner.Planner, pr *Profiler, g *model.Graph, w model.Workload, gpuTypes []string, maxN int) (*JobProfile, error) {
	return ProfileJobCtx(context.Background(), pl, pr, g, w, gpuTypes, maxN, nil)
}

// ProfileJobCtx is ProfileJob with cooperative cancellation and progress
// reporting: the grid loop stops at the first cancelled check and returns
// ctx.Err(); progress (which may be nil) receives one "profile.job" event
// per grid planned. Uncancelled, the profile is bit-identical to
// ProfileJob's.
func ProfileJobCtx(ctx context.Context, pl *planner.Planner, pr *Profiler, g *model.Graph, w model.Workload, gpuTypes []string, maxN int, progress core.ProgressFunc) (*JobProfile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jp := &JobProfile{
		Workload:  w,
		Estimates: map[core.Grid]*Estimate{},
		GridPlans: map[core.Grid]*planner.GridPlan{},
	}
	grids := core.Enumerate(w, len(g.Ops), gpuTypes, maxN)
	for i, grid := range grids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gp, err := pl.PlanGrid(g, grid)
		if err != nil {
			return nil, err
		}
		progress.Emit("profile.job", grid.String(), i+1, len(grids))
		if !gp.Feasible {
			continue
		}
		jp.GridPlans[grid] = gp
		est, err := pr.ProfileGridPlan(g, gp)
		if err != nil {
			return nil, err
		}
		jp.Estimates[grid] = &est
		jp.TotalProfileGPUTime += est.ProfileGPUTime
	}
	if math.IsNaN(jp.TotalProfileGPUTime) {
		return nil, fmt.Errorf("profiler: NaN profiling cost for %v", w)
	}
	return jp, nil
}
