package fixture

import "fmt"

// A reasoned suppression: the consumer is order-insensitive in a way
// the analyzer cannot see.
func debugDump(m map[string]int) {
	for k, v := range m {
		//arena:allow maporder debug-only dump, consumer sorts lines
		fmt.Println(k, v)
	}
}
