package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean of 1,2,3")
	}
}

func TestMax(t *testing.T) {
	if Max(nil) != 0 {
		t.Error("empty max")
	}
	if Max([]float64{3, 9, 1}) != 9 {
		t.Error("max of 3,9,1")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 1) != 5 {
		t.Error("extremes")
	}
	if Percentile(xs, 0.5) != 3 {
		t.Errorf("median = %v", Percentile(xs, 0.5))
	}
	if got := Percentile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("input mutated")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		pa := math.Abs(a) / (math.Abs(a) + 1) // squash into [0,1)
		pb := math.Abs(b) / (math.Abs(b) + 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(raw, pa) <= Percentile(raw, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cdf := CDF(xs, 4)
	if len(cdf) != 4 {
		t.Fatalf("got %d points", len(cdf))
	}
	if cdf[0].X != 1 || cdf[len(cdf)-1].X != 4 {
		t.Errorf("endpoints: %+v", cdf)
	}
	if cdf[len(cdf)-1].F != 1 {
		t.Errorf("final F = %v", cdf[len(cdf)-1].F)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].F < cdf[i-1].F {
			t.Error("CDF not monotone")
		}
	}
	if CDF(nil, 4) != nil || CDF(xs, 1) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Errorf("RelErr(11,10) = %v", RelErr(11, 10))
	}
	if RelErr(5, 0) != 0 {
		t.Error("division by zero guard")
	}
}

func TestSummaryFinalize(t *testing.T) {
	s := Summary{
		ThroughputSeries: []float64{10, 20, 30},
		JCTs:             []float64{100, 200, 300, 400},
		QueueTimes:       []float64{5, 15},
	}
	s.Finalize()
	if s.AvgThr != 20 || s.PeakThr != 30 {
		t.Errorf("thr: %v/%v", s.AvgThr, s.PeakThr)
	}
	if s.AvgJCT != 250 || s.AvgQueue != 10 {
		t.Errorf("jct/queue: %v/%v", s.AvgJCT, s.AvgQueue)
	}
	if s.P50JCT != 250 {
		t.Errorf("p50 = %v", s.P50JCT)
	}
}

func TestDeadlineRatio(t *testing.T) {
	s := Summary{DeadlineSatisfied: 3, DeadlineTotal: 4}
	if s.DeadlineRatio() != 0.75 {
		t.Errorf("ratio = %v", s.DeadlineRatio())
	}
	if (&Summary{}).DeadlineRatio() != 0 {
		t.Error("no deadlines should give 0")
	}
}
