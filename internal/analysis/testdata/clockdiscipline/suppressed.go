package fixture

import "time"

// A reasoned suppression: a one-shot startup stamp outside any replayed
// path.
func startupStamp() time.Time {
	//arena:allow clockdiscipline process start stamp, never replayed
	return time.Now()
}
