package experiments

import (
	"context"
	"errors"

	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/trace"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:     "test",
		Title:  "a title",
		Header: []string{"col1", "longer-column"},
	}
	tbl.AddRow("a", "b")
	tbl.AddRow("longer-cell", "c")
	tbl.Note("note %d", 7)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== test: a title ==", "col1", "longer-cell", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	env := NewEnv(42)
	reg := env.Registry()
	if len(reg) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(reg))
	}
	seen := map[string]bool{}
	for _, ex := range reg {
		if ex.ID == "" || ex.Brief == "" || ex.Run == nil {
			t.Errorf("incomplete experiment %+v", ex)
		}
		if seen[ex.ID] {
			t.Errorf("duplicate experiment %s", ex.ID)
		}
		seen[ex.ID] = true
	}
	// Every paper figure of §5 must be present.
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := env.Lookup("fig15"); err != nil {
		t.Error(err)
	}
	if _, err := env.Lookup("nope"); err == nil {
		t.Error("unknown lookup should error")
	}
}

func TestFig6RunsAndShowsBalanceEffect(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestFig14ProxyNearOptimal(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig14(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Each case's proxy/best column should be ≥ 80%.
	for _, row := range tbl.Rows {
		frac := row[4]
		if frac == "-" {
			t.Errorf("infeasible case %v", row)
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(frac, "%"), 64)
		if err != nil {
			t.Fatalf("bad fraction %q", frac)
		}
		if v < 80 {
			t.Errorf("proxy quality %s below 80%% in %v", frac, row)
		}
	}
}

func TestFig15QualityAndCostCut(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig15(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
}

func TestFig2OptimalPlansShift(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a) must contain at least two distinct optimal plans across
	// GPU counts (the dynamicity claim).
	plans := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[0] == "a" {
			plans[row[4]] = true
		}
	}
	if len(plans) < 2 {
		t.Errorf("no plan dynamicity in panel (a): %v", plans)
	}
}

// TestRunCancelsMidFigure is the registry-migration guarantee: every
// experiment observes its context, so arena-bench's ^C aborts mid-figure —
// not only mid-DB-build — with ctx.Err() and no table.
func TestRunCancelsMidFigure(t *testing.T) {
	env := NewEnv(42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"fig2", "fig3", "fig11", "fig15"} {
		ex, err := env.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := ex.Run(ctx)
		if tbl != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want canceled run, got table=%v err=%v", id, tbl, err)
		}
	}
}

// TestEnvForwardsProgress covers the per-figure progress stream: the
// Env's serialized sink must deliver perfdb.build events from database
// builds and sim.round events from policy runs — what arena-bench -v
// prints.
func TestEnvForwardsProgress(t *testing.T) {
	env := NewEnv(42)
	var mu sync.Mutex
	steps := map[string]int{}
	env.Progress = func(ev core.Event) {
		mu.Lock()
		steps[ev.Step]++
		mu.Unlock()
	}

	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	db, err := perfdb.Build(env.Engine(), perfdb.Options{
		GPUTypes:  []string{"A40"},
		MaxN:      4,
		Workloads: []model.Workload{w},
		Progress:  env.progress(), // the sink Env.DB threads into builds
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := trace.Generate(trace.Config{
		Kind: trace.Philly, Duration: 3600, NumJobs: 6, Seed: 7,
		GPUTypes: []string{"A40"}, MaxGPUs: 4,
		Workloads: []model.Workload{w},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.runPolicies(context.Background(), hw.ClusterA(), jobs, db, 8, []sched.Policy{policy.NewFCFS()}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if steps["perfdb.build"] == 0 {
		t.Error("no perfdb.build progress events forwarded")
	}
	if steps["sim.round"] == 0 {
		t.Error("no sim.round progress events forwarded")
	}
}
