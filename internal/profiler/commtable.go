// Package profiler implements Arena's disaggregated profiling (§3.4):
// operator-level profiling on a single device with compute-redundancy
// elimination, offline-sampled communication primitives with online
// volume interpolation, and closed-form 1F1B end-to-end modeling (Fig. 9).
//
// The profiler observes operator kernels through the execution engine's
// own KernelTime function — the "kernel-level equivalence" the paper
// achieves by profiling stage executables with the same runtime
// optimizations as direct execution. Its residual end-to-end error
// (Fig. 16a) comes from everything it models instead of measures:
// interpolated collectives, the closed-form pipeline, assumed
// communication overlap, and per-iteration framework overheads.
package profiler

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
)

// CommTable holds offline-sampled communication latencies per
// (primitive, topology), supporting online interpolation by transfer
// volume (§3.4: "Arena offline samples representative data volumes and
// profiles candidate primitives across pre-accessible hardware").
type CommTable struct {
	samples map[string][]volumeSample // key: primitive + "|" + topology
	// OfflineCostSeconds models the one-shot sampling campaign's duration
	// (the paper reports ≈3.5 hours for a 4-GPU node, §5.8).
	OfflineCostSeconds float64
}

type volumeSample struct {
	volume  float64
	latency float64
}

// Sample volumes: 1 KiB to ~64 GiB, log-spaced ×4 — wide enough to cover
// activation all-reduces (MBs) through MoE gradient syncs (tens of GBs).
func sampleVolumes() []float64 {
	var vols []float64
	for v := 1024.0; v <= 64*1024*1024*1024; v *= 4 {
		vols = append(vols, v)
	}
	return vols
}

// perSampleSeconds models the wall-clock cost of measuring one
// (primitive, topology, volume) point offline, including setup.
const perSampleSeconds = 1.5

// OfflineSampleComm builds the communication table by measuring the
// engine's collectives across every topology reachable on the given GPU
// types with groups up to maxWorkers: intra-node rings and cross-node
// rings with every power-of-two NIC-sharing factor.
func OfflineSampleComm(eng *exec.Engine, gpuTypes []string, maxWorkers int) (*CommTable, error) {
	ct := &CommTable{samples: map[string][]volumeSample{}}
	vols := sampleVolumes()
	for _, typ := range gpuTypes {
		spec, err := hw.Lookup(typ)
		if err != nil {
			return nil, err
		}
		var topos []hw.Topology
		for k := 2; k <= maxWorkers; k *= 2 {
			// Intra-node placement (feasible when the node is big enough,
			// but sampled regardless: pre-accessible hardware may differ).
			topos = append(topos, hw.Topology{GPUType: typ, Workers: k, CrossNode: false, NICShare: 1})
			for share := 1; share <= spec.GPUsPerNode && share <= k; share *= 2 {
				topos = append(topos, hw.Topology{GPUType: typ, Workers: k, CrossNode: true, NICShare: share})
			}
		}
		for _, prim := range hw.Primitives() {
			for _, topo := range topos {
				key := commKey(prim, topo)
				for _, v := range vols {
					lat := eng.CollectiveTime(prim, topo, v)
					ct.samples[key] = append(ct.samples[key], volumeSample{volume: v, latency: lat})
					ct.OfflineCostSeconds += perSampleSeconds
				}
				sort.Slice(ct.samples[key], func(i, j int) bool {
					return ct.samples[key][i].volume < ct.samples[key][j].volume
				})
			}
		}
	}
	return ct, nil
}

func commKey(p hw.Primitive, topo hw.Topology) string {
	return string(p) + "|" + topo.String()
}

// Interpolate estimates the latency of primitive p over v bytes with the
// given topology by piecewise-linear interpolation between the two
// bracketing offline samples ("the latency of a communication operator is
// proportional to data transfer volume" under fixed primitive and
// topology, §3.4). Volumes outside the sampled range extrapolate from the
// nearest segment.
func (ct *CommTable) Interpolate(p hw.Primitive, topo hw.Topology, v float64) (float64, error) {
	if topo.Workers <= 1 && p != hw.P2P {
		return 0, nil
	}
	key := commKey(p, topo)
	ss := ct.samples[key]
	if len(ss) == 0 {
		return 0, fmt.Errorf("profiler: no offline samples for %s", key)
	}
	if v <= 0 {
		return 0, nil
	}
	// Locate the bracketing segment.
	i := sort.Search(len(ss), func(i int) bool { return ss[i].volume >= v })
	switch {
	case i == 0:
		i = 1
	case i >= len(ss):
		i = len(ss) - 1
	}
	lo, hi := ss[i-1], ss[i]
	frac := (v - lo.volume) / (hi.volume - lo.volume)
	return lo.latency + frac*(hi.latency-lo.latency), nil
}

// Keys returns the table's (primitive, topology) keys, sorted, for
// diagnostics and tests.
func (ct *CommTable) Keys() []string {
	keys := make([]string, 0, len(ct.samples))
	for k := range ct.samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
