// Command shadowcheck is the deprecated predecessor of arena-vet.
//
// It remains as a thin shim so existing invocations (scripts, muscle
// memory, `go run ./internal/shadowcheck .`) keep working: the two
// checks it used to implement syntactically — context-parameter
// shadowing and the scheduling-code clock discipline — now run as the
// ctxshadow and clockdiscipline analyzers of internal/analysis, which
// type-check the module instead of pattern-matching its syntax and are
// joined there by maporder, stablesort and rngdiscipline.
//
// Prefer either of:
//
//	go run ./cmd/arena-vet ./...
//	go vet -vettool=$(which arena-vet) ./...
//
// which run the full suite. This shim runs only the original two
// checks, with the original contract: directories as arguments
// (default "."), findings on stdout, exit 1 on findings, exit 2 on
// errors.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sjtu-epcc/arena/internal/analysis"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fmt.Fprintln(os.Stderr,
		"shadowcheck: deprecated; use `go run ./cmd/arena-vet ./...` for the full analyzer suite")

	checks := []*analysis.Analyzer{analysis.CtxShadow, analysis.ClockDiscipline}
	found := false
	for _, root := range roots {
		modRoot, err := analysis.FindModuleRoot(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
		pattern, err := dirPattern(modRoot, root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
		res, err := analysis.LoadModule(analysis.LoadConfig{Dir: modRoot, Patterns: []string{pattern}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
		for _, pkg := range res.Packages {
			diags, err := analysis.RunPackage(pkg, checks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Println(d)
				found = true
			}
		}
	}
	if found {
		os.Exit(1)
	}
}

// dirPattern converts a directory argument into a package pattern
// relative to the module root.
func dirPattern(modRoot, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return "./...", nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, modRoot)
	}
	return "./" + filepath.ToSlash(rel) + "/...", nil
}
