// Command arena-plan runs Arena's execution-free parallelism planner on
// one model and resource, printing the per-grid proxy plans and Pareto
// frontiers — the analogue of the paper artifact's crius_cell_profile.py
// (§A.4.3; "cell" is the artifact's name for a grid).
//
// Usage:
//
//	arena-plan -model GPT-1.3B -batch 128 -gpu A40 -n 4
//	arena-plan -model WRes-1B -batch 256 -gpu A40 -n 4 -s 2 -frontier
//	arena-plan -model GPT-1.3B -gpu A40 -n 8 -store ./measurements
//
// With -store, measurements persist across invocations: running the same
// command twice serves the second run entirely from the on-disk memo
// (watch the "store:" lines on stderr report zero cold measurements).
package main

import (
	"flag"
	"fmt"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/cli"
)

func main() {
	var (
		modelName = flag.String("model", "GPT-1.3B", "model variant (see -models)")
		batch     = flag.Int("batch", 128, "global batch size")
		gpu       = flag.String("gpu", "A40", "GPU type")
		n         = flag.Int("n", 4, "allocated GPU count (power of two)")
		s         = flag.Int("s", 0, "pipeline degree; 0 = enumerate all grids")
		frontier  = flag.Bool("frontier", false, "print the Pareto frontier per grid")
		measure   = flag.Bool("measure", true, "measure proxy plans on the simulated testbed")
		models    = flag.Bool("models", false, "list model variants and exit")
	)
	c := cli.CommonFlags()
	flag.Parse()
	ctx := cli.Context()

	if *models {
		for _, name := range arena.ModelNames() {
			fmt.Println(name)
		}
		return
	}

	g, err := arena.BuildModel(*modelName)
	if err != nil {
		cli.Fatal(err)
	}
	w := arena.Workload{Model: *modelName, GlobalBatch: *batch}
	sess := cli.NewSession(c,
		arena.WithSeed(c.Seed),
		arena.WithWorkers(c.Workers),
		arena.WithGPUTypes(*gpu),
		arena.WithMaxN(*n),
		arena.WithWorkloads(w),
	)
	defer cli.CloseSession(c, sess)

	degrees := arena.PipelineDegrees(*n, len(g.Ops))
	if *s > 0 {
		degrees = []int{*s}
	}
	fmt.Printf("planning %s (batch %d, %.2fB params) on %dx%s\n\n",
		*modelName, *batch, g.Params()/1e9, *n, *gpu)

	for _, deg := range degrees {
		grid := arena.Grid{Workload: w, GPUType: *gpu, N: *n, S: deg}
		gp, err := sess.Plan(ctx, grid)
		if err != nil {
			cli.Fatal(err)
		}
		if !gp.Feasible {
			fmt.Printf("grid s=%d: infeasible (no partition fits %s memory)\n", deg, *gpu)
			continue
		}
		fmt.Printf("grid s=%d: proxy %-24s b_comp=%.3f l_comm=%.4fs  (%d partitions, frontier %d)\n",
			deg, gp.Proxy.Plan, gp.Proxy.BComp, gp.Proxy.LComm,
			gp.CandidatesEvaluated, len(gp.Frontier))
		if *measure {
			res, err := sess.Evaluate(ctx, g, gp.Proxy.Plan, *gpu, *batch)
			if err == nil && res.Fits {
				fmt.Printf("          measured: %.3fs/iter, %.1f samples/s, peak mem %.1f GB\n",
					res.IterTime, res.Throughput, res.MaxMem/arena.GiB)
			}
		}
		if *frontier {
			for i, cand := range gp.Frontier {
				fmt.Printf("          frontier[%d]: %-24s b_comp=%.3f l_comm=%.4fs ops=%v gpus=%v\n",
					i, cand.Plan, cand.BComp, cand.LComm, cand.OpsPerStage, cand.GPUsPerStage)
			}
		}
	}

	if c.Persistent() {
		db, src := cli.BuildDB(ctx, sess)
		if e, ok := db.Entry(w, *gpu, *n); ok {
			fmt.Printf("\nperfdb (%s): AP optimum %-12s %8.1f samples/s (full search %.0fs)\n",
				src, e.APPlan, e.APThr, e.SearchTimeFull)
			fmt.Printf("             Arena       %-12s %8.1f samples/s (pruned search %.0fs, est %.1f)\n",
				e.ArenaPlan, e.ArenaActualThr, e.SearchTimePruned, e.ArenaEstThr)
		} else {
			fmt.Printf("\nperfdb (%s): no entry for n=%d (the database holds power-of-two GPU counts only)\n", src, *n)
		}
	}
}
