package perfdb

import (
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/model"
)

var (
	once   sync.Once
	testDB *DB
	bErr   error
)

func testWorkloads() []model.Workload {
	return []model.Workload{
		{Model: "WRes-1B", GlobalBatch: 256},
		{Model: "GPT-2.6B", GlobalBatch: 128},
		{Model: "MoE-2.4B", GlobalBatch: 256},
		{Model: "GPT-6.7B", GlobalBatch: 128},
	}
}

func db(t *testing.T) *DB {
	t.Helper()
	once.Do(func() {
		testDB, bErr = Build(exec.NewEngine(42), Options{
			GPUTypes:  []string{"A40", "A10"},
			MaxN:      16,
			Workloads: testWorkloads(),
		})
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return testDB
}

func TestBuildCoversAllKeys(t *testing.T) {
	d := db(t)
	// 4 workloads × 2 types × 5 counts.
	if got := len(d.Keys()); got != 40 {
		t.Fatalf("%d entries, want 40", got)
	}
	for _, k := range d.Keys() {
		if _, ok := d.Entry(k.Workload, k.GPUType, k.N); !ok {
			t.Fatalf("missing entry %v", k)
		}
	}
}

func TestAPDominatesOrMatchesDP(t *testing.T) {
	// The AP optimum includes pure DP in its search space: wherever DP is
	// feasible, AP throughput must be at least as high.
	d := db(t)
	for _, k := range d.Keys() {
		dp := d.DPThr(k.Workload, k.GPUType, k.N)
		ap := d.APThr(k.Workload, k.GPUType, k.N)
		if dp > 0 && ap < dp*0.999 {
			t.Errorf("%v: AP %v below DP %v", k, ap, dp)
		}
	}
}

func TestCase2DemandOverestimation(t *testing.T) {
	// §2.2 Case#2: models with DP floors above their AP floors.
	d := db(t)
	w := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	dpMin := d.MinFeasibleDP(w, "A40")
	apMin := d.MinFeasibleAP(w, "A40")
	if apMin == 0 {
		t.Fatal("GPT-2.6B should run with AP on A40")
	}
	if dpMin != 0 && dpMin <= apMin {
		t.Errorf("DP floor %d should exceed AP floor %d", dpMin, apMin)
	}
	// The AP-only giant: DP fits nowhere.
	giant := model.Workload{Model: "GPT-6.7B", GlobalBatch: 128}
	for _, typ := range []string{"A40", "A10"} {
		if d.MinFeasibleDP(giant, typ) != 0 {
			t.Errorf("GPT-6.7B should have no DP floor on %s", typ)
		}
	}
	if d.MinFeasibleAP(giant, "A40") == 0 {
		t.Error("GPT-6.7B should be AP-schedulable on A40")
	}
}

func TestArenaEstimateAccuracy(t *testing.T) {
	// Arena's scheduling estimates stay within ~20% of what its deployed
	// plans achieve (profiling error, Fig. 16a).
	d := db(t)
	for _, k := range d.Keys() {
		est := d.ArenaEstThr(k.Workload, k.GPUType, k.N)
		act := d.ArenaActualThr(k.Workload, k.GPUType, k.N)
		if est <= 0 || act <= 0 {
			continue
		}
		ratio := est / act
		if ratio < 0.75 || ratio > 1.30 {
			t.Errorf("%v: estimate %v vs actual %v (ratio %.2f)", k, est, act, ratio)
		}
	}
}

func TestArenaActualNearAPOptimal(t *testing.T) {
	// §5.4: the pruned-search plan achieves ≈96% of the full-search one.
	d := db(t)
	var sum float64
	var count int
	for _, k := range d.Keys() {
		ap := d.APThr(k.Workload, k.GPUType, k.N)
		act := d.ArenaActualThr(k.Workload, k.GPUType, k.N)
		if ap <= 0 || act <= 0 {
			continue
		}
		sum += act / ap
		count++
	}
	if count == 0 {
		t.Fatal("no comparable entries")
	}
	if mean := sum / float64(count); mean < 0.88 {
		t.Errorf("mean pruned/full quality %.3f below 0.88", mean)
	}
}

func TestSiaEstOverestimatesAtScale(t *testing.T) {
	// §2.3: linear estimation error grows with GPU count.
	d := db(t)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	truth := d.APThr(w, "A40", 16)
	est := d.SiaEst(w, "A40", 16, 1)
	if truth <= 0 || est <= 0 {
		t.Fatal("expected feasible entries")
	}
	if est <= truth {
		t.Errorf("linear estimate %v should overestimate truth %v at 16 GPUs", est, truth)
	}
}

func TestSiaEtaKnob(t *testing.T) {
	d := db(t)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	// η=5 makes every entry up to 16 GPUs precise.
	if got, want := d.SiaEst(w, "A40", 16, 5), d.APThr(w, "A40", 16); got != want {
		t.Errorf("eta=5 estimate %v, want precise %v", got, want)
	}
	// η=1: only the floor is profiled; everything else linear.
	minN := d.MinFeasibleDP(w, "A40")
	if minN == 0 {
		t.Fatal("WRes-1B should fit DP on A40")
	}
	base := d.DPThr(w, "A40", minN)
	if got := d.SiaEst(w, "A40", 8, 1); got != base/float64(minN)*8 {
		t.Errorf("linear extrapolation mismatch: %v", got)
	}
}

func TestSiaDPFloorHidesDenseAllocations(t *testing.T) {
	// Sia's DP-based view returns 0 below the DP floor even where AP runs.
	d := db(t)
	w := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	apMin := d.MinFeasibleAP(w, "A40")
	dpMin := d.MinFeasibleDP(w, "A40")
	if apMin == 0 || dpMin == 0 || apMin >= dpMin {
		t.Skip("fixture does not exhibit a floor gap on A40")
	}
	if d.SiaEst(w, "A40", apMin, 1) != 0 {
		t.Error("Sia should not see the dense AP-only allocation")
	}
}

func TestObservedRefinement(t *testing.T) {
	d := db(t)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	if d.ObservedThr(w, "A40", 4) != 0 {
		t.Fatal("fresh DB should have no observations")
	}
	d.Observe(w, "A40", 4, 123.4)
	if d.ObservedThr(w, "A40", 4) != 123.4 {
		t.Fatal("observation not recorded")
	}
}

func TestProfilingWallTimes(t *testing.T) {
	d := db(t)
	for _, w := range testWorkloads() {
		if d.ArenaProfileWall(w) <= 0 {
			t.Errorf("%v: no Arena profiling wall time", w)
		}
		if d.DPProfileWall(w) <= 0 {
			t.Errorf("%v: no DP profiling wall time", w)
		}
		if d.SiaProfileWall(w) <= 0 {
			t.Errorf("%v: no Sia profiling wall time", w)
		}
		// Arena's single-GPU grid profiling should be minutes, not hours
		// (§5.8: <20 minutes).
		if d.ArenaProfileWall(w) > 3600 {
			t.Errorf("%v: Arena profiling %vs too long", w, d.ArenaProfileWall(w))
		}
	}
}

func TestSearchTimes(t *testing.T) {
	d := db(t)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	full := d.SearchTimeFull(w, "A40", 8)
	pruned := d.SearchTimePruned(w, "A40", 8)
	if full <= 0 || pruned <= 0 {
		t.Fatal("missing search times")
	}
	if pruned >= full {
		t.Errorf("pruned search (%v) should undercut full (%v)", pruned, full)
	}
}

func TestMeanEstimationError(t *testing.T) {
	d := db(t)
	arenaErr := d.MeanEstimationError(d.ArenaEstThr)
	siaErr := d.MeanEstimationError(func(w model.Workload, typ string, n int) float64 {
		return d.SiaEst(w, typ, n, 1)
	})
	if arenaErr <= 0 || siaErr <= 0 {
		t.Fatal("errors should be positive")
	}
	if arenaErr >= siaErr {
		t.Errorf("Arena's estimation error (%.3f) should undercut Sia's linear one (%.3f)", arenaErr, siaErr)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(exec.NewEngine(1), Options{}); err == nil {
		t.Fatal("missing GPU types should error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	opts := Options{
		GPUTypes:  []string{"A40"},
		MaxN:      4,
		Workloads: []model.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
	}
	a, err := Build(exec.NewEngine(42), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(exec.NewEngine(42), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range a.Keys() {
		ea, _ := a.Entry(k.Workload, k.GPUType, k.N)
		eb, _ := b.Entry(k.Workload, k.GPUType, k.N)
		if *ea != *eb {
			t.Fatalf("entry %v differs across identical builds", k)
		}
	}
}

func TestBuildSharedEvalCacheMatchesFresh(t *testing.T) {
	// A caller-provided measurement cache (the session's, possibly
	// store-hydrated) must change wall-clock only: entries are
	// bit-identical to a build with fresh per-workload caches, on the
	// first use of the cache and again when it is fully warm.
	opts := Options{
		GPUTypes: []string{"A40"},
		MaxN:     4,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
		},
	}
	fresh, err := Build(exec.NewEngine(42), opts)
	if err != nil {
		t.Fatal(err)
	}

	eng := exec.NewEngine(42)
	shared := opts
	shared.EvalCache = evalcache.New(eng)
	cold, err := Build(eng, shared)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Build(eng, shared)
	if err != nil {
		t.Fatal(err)
	}
	if stats := shared.EvalCache.Stats(); stats.StageHits == 0 {
		t.Error("shared cache recorded no hits across builds")
	}
	for _, d := range []*DB{cold, warm} {
		for _, k := range fresh.Keys() {
			ea, _ := fresh.Entry(k.Workload, k.GPUType, k.N)
			eb, ok := d.Entry(k.Workload, k.GPUType, k.N)
			if !ok || *ea != *eb {
				t.Fatalf("entry %v differs between fresh-cache and shared-cache builds", k)
			}
		}
	}
}

func TestBuildRejectsForeignEvalCache(t *testing.T) {
	opts := Options{
		GPUTypes:  []string{"A40"},
		MaxN:      2,
		Workloads: []model.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
		EvalCache: evalcache.New(exec.NewEngine(7)),
	}
	if _, err := Build(exec.NewEngine(42), opts); err == nil {
		t.Fatal("cache bound to a different engine must be rejected")
	}
}
