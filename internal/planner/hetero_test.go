package planner

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

func TestPlanHeteroBasic(t *testing.T) {
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	pool := HeteroPool{"A100": 2, "V100": 4}
	plan, err := New().PlanHetero(g, pool, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Budget respected per type.
	demand := plan.TotalGPUs()
	for typ, n := range demand {
		if n > pool[typ] {
			t.Errorf("plan uses %d×%s, pool has %d", n, typ, pool[typ])
		}
	}
	// Both regions should participate for a 2-stage plan over this pool.
	if len(demand) < 2 {
		t.Errorf("expected a genuinely heterogeneous plan, got %v", demand)
	}
}

func TestPlanHeteroExecutes(t *testing.T) {
	g, err := model.BuildClustered("GPT-2.6B")
	if err != nil {
		t.Fatal(err)
	}
	pool := HeteroPool{"A100": 4, "V100": 4}
	plan, err := New().PlanHetero(g, pool, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewEngine(42)
	res, err := eng.EvaluateHetero(g, plan, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fits || res.Throughput <= 0 {
		t.Fatalf("hetero plan unrunnable: %+v", res)
	}
}

func TestPlanHeteroFasterTypeGetsHeavierStage(t *testing.T) {
	// Wide-ResNet's later layers are heavier; the faster type should host
	// a load share at least proportional to its capability.
	g, err := model.BuildClustered("WRes-1B")
	if err != nil {
		t.Fatal(err)
	}
	pool := HeteroPool{"H100": 2, "V100": 2}
	plan, err := New().PlanHetero(g, pool, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	ref := hw.MustLookup("V100")
	loadOf := func(st exec.HeteroStage) float64 {
		var l float64
		for _, op := range g.Ops[st.OpStart:st.OpEnd] {
			l += OperatorLoad(op, ref)
		}
		return l
	}
	var h100Load, v100Load float64
	for _, st := range plan.Stages {
		switch st.GPUType {
		case "H100":
			h100Load += loadOf(st)
		case "V100":
			v100Load += loadOf(st)
		}
	}
	if h100Load <= v100Load {
		t.Errorf("H100 stages should carry more load (H100=%v V100=%v)", h100Load, v100Load)
	}
}

func TestPlanHeteroBeatsSlowHomogeneous(t *testing.T) {
	// Adding fast GPUs to a slow pool should beat the slow pool alone —
	// the point of the §6 extension.
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewEngine(42)
	pl := New()

	mixed, err := pl.PlanHetero(g, HeteroPool{"A100": 2, "V100": 2}, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	mixedRes, err := eng.EvaluateHetero(g, mixed, 128)
	if err != nil || !mixedRes.Fits {
		t.Fatalf("mixed plan failed: %v", err)
	}

	slow, err := pl.PlanHetero(g, HeteroPool{"V100": 4}, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := eng.EvaluateHetero(g, slow, 128)
	if err != nil || !slowRes.Fits {
		t.Fatalf("slow plan failed: %v", err)
	}
	if mixedRes.Throughput <= slowRes.Throughput {
		t.Errorf("mixed pool (%v) should beat all-V100 (%v)", mixedRes.Throughput, slowRes.Throughput)
	}
}

func TestPlanHeteroValidation(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	if _, err := New().PlanHetero(g, HeteroPool{}, 2, 128); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := New().PlanHetero(g, HeteroPool{"A100": 4}, 0, 128); err == nil {
		t.Error("zero stages should error")
	}
	// A pool too small for the model's memory should fail feasibly.
	if _, err := New().PlanHetero(model.MustBuildClustered("MoE-27B"), HeteroPool{"A10": 1}, 1, 256); err == nil {
		t.Error("infeasible pool should error")
	}
}

func TestHeteroPlanValidateCatchesMistakes(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	bad := &exec.HeteroPlan{
		Stages: []exec.HeteroStage{
			{StagePlan: parallelStage(0, len(g.Ops)/2, 1, 1), GPUType: "A100"},
			{StagePlan: parallelStage(len(g.Ops)/2+1, len(g.Ops), 1, 1), GPUType: "V100"}, // gap
		},
		NumMicrobatches: 8,
	}
	if err := bad.Validate(g); err == nil {
		t.Error("gap should fail validation")
	}
	unknown := &exec.HeteroPlan{
		Stages:          []exec.HeteroStage{{StagePlan: parallelStage(0, len(g.Ops), 1, 1), GPUType: "TPU"}},
		NumMicrobatches: 4,
	}
	if err := unknown.Validate(g); err == nil {
		t.Error("unknown type should fail validation")
	}
}

func TestNearestPow2(t *testing.T) {
	cases := []struct {
		ideal  float64
		budget int
		want   int
	}{
		{0.3, 8, 1}, {1.6, 8, 2}, {3.1, 8, 4}, {7.9, 8, 8}, {12, 8, 8},
		{5, 0, 0}, {2.9, 2, 2},
	}
	for _, c := range cases {
		if got := nearestPow2(c.ideal, c.budget); got != c.want {
			t.Errorf("nearestPow2(%v,%d) = %d, want %d", c.ideal, c.budget, got, c.want)
		}
	}
}

func parallelStage(start, end, dp, tp int) parallel.StagePlan {
	return parallel.StagePlan{OpStart: start, OpEnd: end, DP: dp, TP: tp}
}

func TestPlanHeteroDeterministic(t *testing.T) {
	// The heterogeneous planner shares forEachPartition with the
	// homogeneous reference path; repeated runs over the same pool must
	// bind stages to types bit-identically.
	g := model.MustBuildClustered("GPT-1.3B")
	pool := HeteroPool{"A100": 2, "V100": 4, "A40": 2}
	first, err := New().PlanHetero(g, pool, 3, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := New().PlanHetero(g, pool, 3, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
}

func TestPlanHeteroLoadTiesBindByStageIndex(t *testing.T) {
	// Sixteen single-op stages in two equal-load classes, interleaved:
	// odd-indexed stages are heavy, even-indexed light. The greedy binder
	// hands the fast type to the heaviest stages first; within a load
	// class the winner must be decided by stage index, not by whatever
	// permutation sort.Slice's pdqsort leaves equal elements in (the
	// slice is long enough to leave insertion sort's stable small-n
	// regime, so a bare load comparator scrambles the tie group).
	const nOps = 16
	ops := make([]model.Op, nOps)
	for i := range ops {
		load := 1.0
		if i%2 == 1 {
			load = 2.0
		}
		ops[i] = model.Op{
			Name: fmt.Sprintf("op%02d", i), Kind: model.KindMLP,
			FLOPs: load * 1e12, Bytes: load * 1e9,
			ParamBytes: 1e6, ActBytes: 1e6,
		}
	}
	g := &model.Graph{Name: "tie-synthetic", Family: "gpt", SeqLen: 1024, Ops: ops, ActMemFactor: 1}

	// One op per stage means forEachPartition enumerates exactly one
	// partition, so the binder's choices are the whole plan.
	plan, err := New().PlanHetero(g, HeteroPool{"H100": 4, "V100": 80}, nOps, 128)
	if err != nil {
		t.Fatal(err)
	}
	var h100 []int
	for j, st := range plan.Stages {
		if st.GPUType == "H100" {
			h100 = append(h100, j)
		}
	}
	if len(h100) == 0 {
		t.Fatal("no stage bound to H100; pool sizing assumption broken")
	}
	// The H100 budget is exhausted inside the heavy tie group, and must
	// go to its lowest-indexed members: 1, 3, 5, ...
	for k, j := range h100 {
		if want := 2*k + 1; j != want {
			t.Fatalf("H100 stages = %v; tie group bound out of stage-index order (stage %d, want %d)",
				h100, j, want)
		}
	}
}

func TestPlanHeteroEdgeDegrees(t *testing.T) {
	// Degenerate pipeline degrees mirror the homogeneous edge-partition
	// coverage: a single stage pinned to one type, and one operator per
	// stage across the whole graph.
	g := model.MustBuildClustered("GPT-1.3B")

	single, err := New().PlanHetero(g, HeteroPool{"A100": 4}, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(single.Stages) != 1 || single.Stages[0].OpStart != 0 || single.Stages[0].OpEnd != len(g.Ops) {
		t.Fatalf("s=1 plan should span the graph: %+v", single.Stages)
	}

	perOp, err := New().PlanHetero(g, HeteroPool{"A100": 24, "V100": 24}, len(g.Ops), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := perOp.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(perOp.Stages) != len(g.Ops) {
		t.Fatalf("s=numOps plan has %d stages, want %d", len(perOp.Stages), len(g.Ops))
	}
	for j, st := range perOp.Stages {
		if st.OpEnd-st.OpStart != 1 {
			t.Fatalf("stage %d spans %d ops, want 1", j, st.OpEnd-st.OpStart)
		}
	}

	if _, err := New().PlanHetero(g, HeteroPool{"A100": 4}, len(g.Ops)+1, 128); err == nil {
		t.Error("s > numOps should error")
	}
}
