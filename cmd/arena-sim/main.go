// Command arena-sim runs trace-driven cluster scheduling simulations —
// the analogue of the paper artifact's simulator.py (§A.4.4).
//
// Usage:
//
//	arena-sim -policy arena -trace philly -cluster sim -jobs 3000
//	arena-sim -policy all -trace philly -cluster a -store ./measurements
//	arena-sim -policy sia -trace pai -cluster sim -jobs 450 -workers 4
package main

import (
	"flag"
	"fmt"
	"time"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/cli"
	"github.com/sjtu-epcc/arena/internal/metrics"
)

func main() {
	var (
		policyName  = flag.String("policy", "all", "fcfs|gavel|elasticflow|sia|arena|all")
		traceKind   = flag.String("trace", "philly", "philly|helios|pai")
		clusterName = flag.String("cluster", "sim", "a|b|sim|b-homogeneous")
		jobs        = flag.Int("jobs", 0, "job count (0 = per-trace default)")
		scale       = flag.Float64("scale", 12, "job lifespan scale")
		rounds      = flag.Int("rounds", 0, "max scheduling rounds (0 = auto)")
	)
	c := cli.CommonFlags()
	flag.Parse()
	ctx := cli.Context()

	spec, err := cli.PickCluster(*clusterName)
	if err != nil {
		cli.Fatal(err)
	}
	types := spec.GPUTypes()

	cfg, err := cli.PickTrace(*traceKind, c.Seed, types, *jobs)
	if err != nil {
		cli.Fatal(err)
	}
	cfg.LifespanScale = *scale
	traceJobs, err := arena.GenerateTrace(cfg)
	if err != nil {
		cli.Fatal(err)
	}

	sess := cli.NewSession(c,
		arena.WithSeed(c.Seed),
		arena.WithWorkers(c.Workers),
		arena.WithCluster(spec),
		arena.WithMaxN(16),
		arena.WithWorkloads(arena.DefaultWorkloads()...),
	)
	defer cli.CloseSession(c, sess)

	fmt.Printf("building performance database for %v (this exercises the planner, profiler and AP searches)...\n", types)
	start := time.Now()
	db, src := cli.BuildDB(ctx, sess)
	fmt.Printf("  %d entries (%s) in %v\n\n", len(db.Keys()), src, time.Since(start).Round(time.Millisecond))

	pols, err := pickPolicies(*policyName)
	if err != nil {
		cli.Fatal(err)
	}
	window := int(cfg.Duration / 300)
	fmt.Printf("%-16s %10s %10s %10s %10s %8s %9s\n",
		"policy", "avgJCT(s)", "avgQ(s)", "avgThr", "peakThr", "finished", "resched")
	for _, p := range pols {
		res, err := sess.Simulate(ctx, arena.SimConfig{
			Policy: p, Jobs: traceJobs,
			RoundSeconds: 300, MaxRounds: pick(*rounds, 2*window+576),
			IncludeUnfinished: true, Seed: c.Seed,
		})
		if err != nil {
			cli.Fatal(err)
		}
		series := res.ThroughputSeries
		if len(series) > window {
			series = series[:window]
		}
		fmt.Printf("%-16s %10.0f %10.0f %10.1f %10.1f %5d/%-3d %9.2f\n",
			p.Name(), res.AvgJCT, res.AvgQueue,
			metrics.Mean(series), metrics.Max(series),
			res.Finished, res.Total, res.AvgReschedules)
	}
}

func pickPolicies(name string) ([]arena.Policy, error) {
	switch name {
	case "fcfs":
		return []arena.Policy{arena.NewFCFS()}, nil
	case "gavel":
		return []arena.Policy{arena.NewGavel()}, nil
	case "elasticflow":
		return []arena.Policy{arena.NewElasticFlow()}, nil
	case "sia":
		return []arena.Policy{arena.NewSia()}, nil
	case "arena":
		return []arena.Policy{arena.NewArenaPolicy()}, nil
	case "all":
		return []arena.Policy{
			arena.NewFCFS(), arena.NewGavel(), arena.NewElasticFlow(),
			arena.NewSia(), arena.NewArenaPolicy(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
