package sched

import (
	"strings"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
)

// This file is the incremental scoring layer: the structures that make
// per-round policy work proportional to what changed instead of to queue
// depth. Three primitives, each invalidated only when its inputs move:
//
//   - launch ladders (arena): per launch-signature candidate lists —
//     the (type, size, throughput) sequence bestUnderFree iterates, with
//     the thr<=0 filtering and the 1.3× knee break precomputed. A
//     signature's ladder depends only on the performance database, the
//     per-job cap and the cluster's type order, so it is cached for the
//     policy's lifetime and rebuilt only if one of those moves.
//
//   - failure memos (arena, sia): within one Assign round, a failed
//     admission is a pure function of the job's launch signature and the
//     free-capacity vector. Free capacity only shrinks while the phase
//     runs (the one exception — a victim-shrink-enabled arena launch that
//     lands — clears the memo), so an identical later job can skip the
//     whole candidate search: it provably fails too. The memo is the
//     bounded admission window of Algorithm 1's launch phase: only the
//     head-of-queue prefix introducing new signatures does real scoring
//     work, while skipped jobs still lower the blocking bar (line 9).
//
//   - GainHeap (arena scale-up, elasticflow/sia growth): the marginal-
//     gain loops repeatedly take an argmax over candidates whose gain
//     changes only when that candidate itself is doubled. The heap makes
//     each selection O(log n) and re-scores exactly the one dirtied
//     entry, instead of rescanning every candidate per iteration.
//
// Every fast path must be *bit-identical* to the full rescan it
// replaces: the simulator's score parity matrix proves DeepEqual
// equality of summaries and per-job outcomes across all five policies,
// faults on/off, slice and streamed traces. Config.ReferenceScore keeps
// the rescans alive as the oracle, mirroring ReferenceScan for the
// event core.

// ReferenceScorer is implemented by policies that maintain incremental
// score caches with a full-rescan reference mode. The simulator's engine
// propagates Config.ReferenceScore through it; policies without caches
// (FCFS) simply don't implement it.
type ReferenceScorer interface {
	// SetReferenceScore toggles the full per-round candidate rescan
	// (true) against the incremental score caches (false, the default).
	// Both paths make identical decisions; the flag exists as the oracle
	// the parity tests check the caches against.
	SetReferenceScore(on bool)
}

// launchSig identifies the inputs of one launch-admission decision that
// come from the job itself. Two queued jobs with equal signatures see
// identical candidate ladders, so under equal free capacity their
// admission succeeds or fails identically. Workload is a comparable
// (model, batch) struct; the request fields participate only under the
// ablations that read them.
type launchSig struct {
	w       model.Workload
	reqType string // set only under DisableHetero (pins allowedTypes)
	reqGPUs int    // set only under DisableElastic (pins allowedCounts)
}

// ladderCand is one knee-surviving launch candidate.
type ladderCand struct {
	typ string
	n   int
	thr float64
}

// ladder is a signature's launch candidate list in exactly the order
// bestUnderFree's reference loop visits survivors: allowedTypes outer,
// allowedCounts inner, zero-throughput entries dropped, each type
// truncated at the first knee-rule violation. Free-capacity and deadline
// checks stay at use time — they are the inputs that move per round.
type ladder struct {
	cands []ladderCand
	// counts is the allowedCounts result (nil in rigid mode when no
	// profiled size fits) — the launch loop's drop check reads it.
	counts []int
}

// ladderCacheKey fingerprints everything a ladder depends on besides the
// signature. The database pointer stands in for its contents: arena's
// perceived throughputs are static per DB (no online refinement), so the
// same pointer means the same table.
type ladderCacheKey struct {
	db    *perfdb.DB
	maxN  int
	types string
}

// ensureLadders resets the ladder cache when its inputs moved (different
// database, per-job cap or cluster type order — e.g. the policy instance
// reused across simulations). Called once per Assign.
func (p *ArenaPolicy) ensureLadders(ctx *Context) {
	key := ladderCacheKey{
		db:    ctx.DB,
		maxN:  ctx.MaxPerJob,
		types: strings.Join(ctx.Cluster.GPUTypes(), "\x00"),
	}
	if p.ladders == nil || p.ladderKey != key {
		p.ladders = map[launchSig]*ladder{}
		p.ladderKey = key
	}
}

// sigOf builds the job's launch signature under the active ablations.
func (p *ArenaPolicy) sigOf(job *Job) launchSig {
	sig := launchSig{w: job.Trace.Workload}
	if p.DisableHetero {
		sig.reqType = job.Trace.ReqType
	}
	if p.DisableElastic {
		sig.reqGPUs = job.Trace.ReqGPUs
	}
	return sig
}

// launchLadder returns the signature's cached candidate ladder, building
// it on first use with the very loops the reference path runs.
func (p *ArenaPolicy) launchLadder(ctx *Context, job *Job) *ladder {
	sig := p.sigOf(job)
	if lad, ok := p.ladders[sig]; ok {
		return lad
	}
	lad := &ladder{counts: p.allowedCounts(ctx, job)}
	for _, typ := range p.allowedTypes(ctx, job) {
		var prevThr float64
		for _, n := range lad.counts {
			thr := p.PerceivedThr(ctx.DB, job.Workload(), typ, n)
			if thr <= 0 {
				continue
			}
			if prevThr > 0 && thr < prevThr*1.3 {
				break
			}
			prevThr = thr
			lad.cands = append(lad.cands, ladderCand{typ: typ, n: n, thr: thr})
		}
	}
	p.ladders[sig] = lad
	return lad
}

// GainHeap selects repeated argmaxes over per-candidate marginal gains,
// breaking ties toward the lowest index — exactly what an index-order
// scan with a strict `>` comparison and a 0.0 floor returns, so a scan
// loop can be replaced by Pop without changing any decision. Candidates
// are dense indices into a caller-side slice; Update re-scores one entry
// (stale copies are discarded lazily on Pop via a per-index version).
//
// The intended discipline, shared by every marginal-gain loop here:
// gains that depend only on the candidate's own target size are pushed
// once and re-pushed only when that candidate is doubled; checks against
// free capacity stay at Pop time, and because free capacity only shrinks
// within a phase, a candidate that fails them can be discarded outright
// rather than re-queued.
type GainHeap struct {
	entries []gainEntry
	version []int
}

type gainEntry struct {
	gain    float64
	idx     int
	version int
}

// NewGainHeap returns a heap over candidate indices [0, n).
func NewGainHeap(n int) *GainHeap {
	return &GainHeap{version: make([]int, n)}
}

// Update (re-)scores candidate idx. Non-positive gains are recorded as
// "not selectable" — the scan semantics this replaces start the argmax
// at 0.0 with a strict comparison — so any queued stale entry is
// invalidated and nothing is pushed.
func (h *GainHeap) Update(idx int, gain float64) {
	h.version[idx]++
	if gain <= 0 {
		return
	}
	h.entries = append(h.entries, gainEntry{gain: gain, idx: idx, version: h.version[idx]})
	h.siftUp(len(h.entries) - 1)
}

// Pop removes and returns the current best candidate index, or ok=false
// when no selectable candidate remains.
func (h *GainHeap) Pop() (idx int, ok bool) {
	for len(h.entries) > 0 {
		top := h.entries[0]
		last := len(h.entries) - 1
		h.entries[0] = h.entries[last]
		h.entries = h.entries[:last]
		if len(h.entries) > 0 {
			h.siftDown(0)
		}
		if top.version == h.version[top.idx] {
			return top.idx, true
		}
		// Stale: the candidate was re-scored after this entry was pushed.
	}
	return 0, false
}

// before is the heap order: higher gain first, then lower index — the
// tie-break an index-order scan with strict `>` produces.
func (h *GainHeap) before(a, b gainEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.idx < b.idx
}

func (h *GainHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.entries[i], h.entries[parent]) {
			return
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *GainHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		best := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && h.before(h.entries[c], h.entries[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h.entries[i], h.entries[best] = h.entries[best], h.entries[i]
		i = best
	}
}
