package fixture

import tm "time"

// The typed check sees through import aliases.
func aliasedNow() tm.Time {
	return tm.Now() // want `time.Now in scheduling code`
}
