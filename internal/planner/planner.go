package planner

import (
	"fmt"
	"math"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// Planner holds the tunables of the planning pass.
type Planner struct {
	// MaxFrontier caps the Pareto frontier size; larger frontiers are
	// reduced by dropping the higher-communication plan of the most
	// similar partition pair (§3.3).
	MaxFrontier int
	// BiasTolerance widens the "minimum computation bias" filter during
	// proxy selection to plans within (1+BiasTolerance)×min, letting the
	// communication load break near-ties.
	BiasTolerance float64
	// Exhaustive switches PlanGrid and EnumerateCandidates from the
	// incremental prefix-DP enumerator (dp.go) to the reference
	// enumerator that recomputes every partition from scratch. Both emit
	// bit-identical GridPlans — proven by TestPrefixDPMatchesExhaustive —
	// so the flag changes wall-clock only. It exists for the determinism
	// tests and the BenchmarkPlanGrid baseline, and is scheduled for
	// deletion once a release has soaked with the DP path as default.
	Exhaustive bool
}

// New returns a Planner with the paper-aligned defaults.
func New() *Planner {
	return &Planner{MaxFrontier: 16, BiasTolerance: 0.05}
}

// Candidate is one generated parallelism plan with its two planning
// metrics. Candidates never carry measured latencies.
type Candidate struct {
	Plan  *parallel.Plan
	BComp float64 // computation bias (Eq. 3); lower = better balanced
	LComm float64 // communication load (Eq. 4), seconds-equivalent

	OpsPerStage  []int     // partition shape, for similarity comparisons
	GPUsPerStage []int     // normalized power-of-two assignment
	IdealAssign  []float64 // fractional load-proportional assignment
}

// GridPlan is the planner's output for one grid.
type GridPlan struct {
	Grid     core.Grid
	Feasible bool         // false when no partition fits device memory
	Proxy    *Candidate   // the grid's representative plan (profiled later)
	Frontier []*Candidate // Pareto-optimal candidates (after reduction)

	// CandidatesEvaluated counts enumerated partitions, for cost analysis.
	CandidatesEvaluated int
}

// opRangeStats caches prefix aggregates so per-range queries are O(1).
type opRangeStats struct {
	load   []float64 // prefix sums of operator loads
	params []float64 // prefix sums of ParamBytes
}

func newRangeStats(g *model.Graph, spec hw.GPU) *opRangeStats {
	n := len(g.Ops)
	s := &opRangeStats{
		load:   make([]float64, n+1),
		params: make([]float64, n+1),
	}
	for i, op := range g.Ops {
		s.load[i+1] = s.load[i] + OperatorLoad(op, spec)
		s.params[i+1] = s.params[i] + op.ParamBytes
	}
	return s
}

func (s *opRangeStats) loadOf(i, j int) float64   { return s.load[j] - s.load[i] }
func (s *opRangeStats) paramsOf(i, j int) float64 { return s.params[j] - s.params[i] }

// OperatorLoad is the roofline-based load of Eq. 2 for one training step of
// one sample: L = FLOPs / R(I). Expressed through the ideal kernel time so
// memory-bound operators (R(I) = I·BW) reduce to bytes/bandwidth. Training
// moves ≈ 3× the forward FLOPs and traffic (fwd + 2× bwd).
func OperatorLoad(op model.Op, spec hw.GPU) float64 {
	return spec.IdealKernelTime(3*op.FLOPs, 3*op.Bytes)
}

// PlanGrid produces the proxy plan and Pareto frontier for one grid.
func (pl *Planner) PlanGrid(g *model.Graph, grid core.Grid) (*GridPlan, error) {
	spec, err := hw.Lookup(grid.GPUType)
	if err != nil {
		return nil, err
	}
	numOps := len(g.Ops)
	if grid.S < 1 || grid.S > numOps || grid.S > grid.N {
		return nil, fmt.Errorf("planner: grid %v infeasible shape (O=%d)", grid, numOps)
	}

	stats := newRangeStats(g, spec)
	totalLoad := stats.loadOf(0, numOps)
	if totalLoad <= 0 {
		return nil, fmt.Errorf("planner: graph %s has zero load", g.Name)
	}

	numMicro := parallel.DefaultMicrobatches(grid.S)
	intra := newIntraSelector(g, spec, grid, numMicro)

	out := &GridPlan{Grid: grid}
	candidates, evaluated := pl.enumerate(g, spec, grid, stats, intra, totalLoad, numMicro)
	out.CandidatesEvaluated = evaluated

	if len(candidates) == 0 {
		return out, nil // infeasible grid: nothing fits memory
	}
	out.Feasible = true
	out.Frontier = pl.reduceFrontier(paretoFrontier(candidates))
	if !pl.Exhaustive {
		// DP-path candidates are arena-backed (dp.go); detach the few
		// survivors so the returned frontier does not pin the whole
		// enumeration's storage.
		for i, c := range out.Frontier {
			out.Frontier[i] = detachCandidate(c)
		}
	}
	out.Proxy = pl.selectProxy(out.Frontier)
	return out, nil
}

// detachCandidate deep-copies a candidate onto its own heap objects,
// preserving every value bit. Proxy selection runs after detachment, so
// the proxy remains a member of the returned frontier.
func detachCandidate(c *Candidate) *Candidate {
	return &Candidate{
		Plan: &parallel.Plan{
			Stages:          append([]parallel.StagePlan(nil), c.Plan.Stages...),
			NumMicrobatches: c.Plan.NumMicrobatches,
		},
		BComp:        c.BComp,
		LComm:        c.LComm,
		OpsPerStage:  append([]int(nil), c.OpsPerStage...),
		GPUsPerStage: append([]int(nil), c.GPUsPerStage...),
		IdealAssign:  append([]float64(nil), c.IdealAssign...),
	}
}

// EnumerateCandidates returns every generated candidate of the grid (one
// per memory-feasible partition) without Pareto filtering — used by the
// §5.4 case study (Fig. 14), which measures the whole grid population.
func (pl *Planner) EnumerateCandidates(g *model.Graph, grid core.Grid) []*Candidate {
	spec, err := hw.Lookup(grid.GPUType)
	if err != nil {
		return nil
	}
	numOps := len(g.Ops)
	if grid.S < 1 || grid.S > numOps || grid.S > grid.N {
		return nil
	}
	stats := newRangeStats(g, spec)
	totalLoad := stats.loadOf(0, numOps)
	if totalLoad <= 0 {
		return nil
	}
	numMicro := parallel.DefaultMicrobatches(grid.S)
	intra := newIntraSelector(g, spec, grid, numMicro)
	out, _ := pl.enumerate(g, spec, grid, stats, intra, totalLoad, numMicro)
	return out
}

// enumerate produces every memory-feasible candidate of the grid, in the
// canonical (lexicographic-partition) order, plus the count of partitions
// enumerated. The DP path (dp.go) is the default; Exhaustive selects the
// reference path that rebuilds every partition from scratch. Emission
// order is part of the contract: paretoFrontier breaks exact (BComp,
// LComm) ties by input position, so both paths must present candidates
// identically for GridPlans to match bit for bit.
func (pl *Planner) enumerate(
	g *model.Graph, spec hw.GPU, grid core.Grid,
	stats *opRangeStats, intra *intraSelector,
	totalLoad float64, numMicro int,
) ([]*Candidate, int) {
	if !pl.Exhaustive {
		return pl.enumerateDP(g, spec, grid, stats, intra, totalLoad, numMicro)
	}
	var out []*Candidate
	evaluated := 0
	scr := newCandScratch(grid.S, grid.N)
	forEachPartition(len(g.Ops), grid.S, func(bounds []int) {
		evaluated++
		if cand := pl.buildCandidate(g, spec, grid, stats, intra, bounds, totalLoad, numMicro, scr); cand != nil {
			out = append(out, cand)
		}
	})
	return out, evaluated
}

// candScratch holds the per-partition working storage of one PlanGrid
// pass. A grid enumerates C(O−1, s−1) partitions and most are rejected;
// reusing the trial buffers (and the assignment DP tables) across them
// removes the planner's dominant allocation cost. Feasible candidates
// copy the buffers out, so retained plans never alias the scratch.
type candScratch struct {
	ideal  []float64
	opsPer []int
	assign []int
	stages []parallel.StagePlan // stageMetrics trial buffer
	dp     []float64            // flat (s+1) × (n+1) assignment DP table
	choice []int32
	stamp  []uint32 // cell validity epoch — skips the per-partition fill
	epoch  uint32
}

func newCandScratch(s, n int) *candScratch {
	size := (s + 1) * (n + 1)
	return &candScratch{
		ideal:  make([]float64, s),
		opsPer: make([]int, s),
		assign: make([]int, s),
		stages: make([]parallel.StagePlan, s),
		dp:     make([]float64, size),
		choice: make([]int32, size),
		stamp:  make([]uint32, size),
	}
}

// buildCandidate evaluates a single stage partition (bounds = exclusive end
// indices per stage): load-proportional GPU assignment, power-of-two
// normalization, intra-stage parallelism, and the two planning metrics.
// Returns nil when no memory-feasible intra-stage choice exists.
func (pl *Planner) buildCandidate(
	g *model.Graph, spec hw.GPU, grid core.Grid,
	stats *opRangeStats, intra *intraSelector,
	bounds []int, totalLoad float64, numMicro int,
	scr *candScratch,
) *Candidate {
	ideal := scr.ideal
	opsPer := scr.opsPer
	start := 0
	for j, end := range bounds {
		ideal[j] = stats.loadOf(start, end) / totalLoad * float64(grid.N)
		opsPer[j] = end - start
		start = end
	}

	assign, bias2 := normalizeAssignment(ideal, grid.N, scr)
	if assign == nil {
		return nil
	}
	lComm, ok := stageMetrics(scr.stages, intra, bounds, assign, numMicro)
	if !ok {
		return nil
	}
	// Detach the scratch-backed slices before retaining them.
	return &Candidate{
		Plan:         &parallel.Plan{Stages: append([]parallel.StagePlan(nil), scr.stages...), NumMicrobatches: numMicro},
		BComp:        math.Sqrt(bias2),
		LComm:        lComm,
		OpsPerStage:  append([]int(nil), opsPer...),
		GPUsPerStage: append([]int(nil), assign...),
		IdealAssign:  append([]float64(nil), ideal...),
	}
}

// stageMetrics resolves a partition + GPU assignment into concrete
// stage shapes (written into the caller's buffer, len = stage count)
// and the communication-load metric. It is the single home of the
// per-candidate float math, shared by the reference and DP enumerators
// so the two paths cannot drift — a candidate's bytes depend only on
// (bounds, assign, numMicro), never on which enumerator called this.
// Returns ok=false when a stage has no memory-feasible (dp, tp) shape.
func stageMetrics(stages []parallel.StagePlan, intra *intraSelector, bounds, assign []int, numMicro int) (lComm float64, ok bool) {
	var maxStageComm, totalComm float64
	start := 0
	for j, end := range bounds {
		choice := intra.best(start, end, assign[j])
		if choice == nil {
			return 0, false // no feasible (dp, tp) for this stage
		}
		stages[j] = parallel.StagePlan{OpStart: start, OpEnd: end, DP: choice.dp, TP: choice.tp}
		perMicro := choice.perMicroComm
		if perMicro > maxStageComm {
			maxStageComm = perMicro
		}
		totalComm += perMicro + choice.iterComm
		start = end
	}

	// Communication load (Eq. 4): the bottleneck stage's per-microbatch
	// communication repeats for B−1 microbatches; every communication
	// operator contributes once for the fill phase, and per-iteration
	// gradient synchronization is counted once.
	return float64(numMicro-1)*maxStageComm + totalComm, true
}

// forEachPartition enumerates all compositions of numOps operators into s
// non-empty contiguous groups, invoking fn with the exclusive end index of
// each group. fn must not retain the slice.
func forEachPartition(numOps, s int, fn func(bounds []int)) {
	bounds := make([]int, s)
	bounds[s-1] = numOps
	var rec func(stage, start int)
	rec = func(stage, start int) {
		if stage == s-1 {
			fn(bounds)
			return
		}
		// Stage `stage` takes ops [start, end); leave ≥1 op per later stage.
		for end := start + 1; end <= numOps-(s-1-stage); end++ {
			bounds[stage] = end
			rec(stage+1, end)
		}
	}
	rec(0, 0)
}

// normalizeAssignment finds the power-of-two per-stage GPU counts summing
// to n that minimize the squared Euclidean distance to the ideal
// fractional assignment (Eq. 3), via dynamic programming over stages.
// Returns nil when n < len(ideal) (cannot give each stage a GPU). The
// returned slice is scratch-backed; callers retaining it must copy.
func normalizeAssignment(ideal []float64, n int, scr *candScratch) ([]int, float64) {
	s := len(ideal)
	if n < s {
		return nil, 0
	}
	const inf = math.MaxFloat64
	// dp[j][r] (stored flat at j*(n+1)+r): min cost assigning stages j..
	// with r GPUs remaining. Cells are valid only when their stamp matches
	// the current epoch; everything else reads as inf, so no per-partition
	// table fill is needed.
	dp, choice, stamp := scr.dp, scr.choice, scr.stamp
	scr.epoch++
	epoch := scr.epoch
	stamp[s*(n+1)+0] = epoch
	dp[s*(n+1)+0] = 0
	for j := s - 1; j >= 0; j-- {
		row, next := j*(n+1), (j+1)*(n+1)
		for r := 1; r <= n; r++ {
			for p := 1; p <= r; p *= 2 {
				if stamp[next+r-p] != epoch {
					continue
				}
				d := float64(p) - ideal[j]
				cost := d*d + dp[next+r-p]
				if stamp[row+r] != epoch || cost < dp[row+r] {
					dp[row+r] = cost
					choice[row+r] = int32(p)
					stamp[row+r] = epoch
				}
			}
		}
	}
	if stamp[n] != epoch {
		return nil, 0
	}
	assign := scr.assign
	r := n
	for j := 0; j < s; j++ {
		assign[j] = int(choice[j*(n+1)+r])
		r -= assign[j]
	}
	return assign, dp[n]
}
